// Integration tests for the segidxd serving layer: a real server::Server
// on a loopback socket, driven by real server::Client connections.
// Covers the acceptance contract of the serving PR: concurrent search and
// write clients agree with a serial oracle, an expired deadline fails the
// request without killing its connection, quotas shed pipelined overload,
// malformed frames drop only the offending connection, and committed
// writes survive a reopen.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/interval_index.h"
#include "gtest/gtest.h"
#include "oracle/naive_oracle.h"
#include "server/client.h"
#include "server/server.h"

namespace segidx {
namespace {

using core::IndexKind;
using core::IndexOptions;
using core::IntervalIndex;
using server::Client;
using server::Server;
using server::ServerOptions;

Rect RandomInterval(Rng* rng) {
  const double s = rng->Uniform(0.0, 1000.0);
  return Rect(Interval(s, s + rng->Uniform(0.5, 30.0)),
              Interval::Point(rng->Uniform(0.0, 1000.0)));
}

std::vector<TupleId> SortedTids(const std::vector<rtree::SearchHit>& hits) {
  std::vector<TupleId> tids;
  tids.reserve(hits.size());
  for (const rtree::SearchHit& hit : hits) tids.push_back(hit.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  return tids;
}

std::unique_ptr<IntervalIndex> MakeIndex() {
  auto created =
      IntervalIndex::CreateInMemory(IndexKind::kRTree, IndexOptions());
  EXPECT_TRUE(created.ok()) << created.status().ToString();
  return std::move(created).value();
}

TEST(ServerTest, StartStopHealthAndStats) {
  auto index = MakeIndex();
  Server server(index.get(), ServerOptions());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto health = (*client)->Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_NE(health->find("\"status\": \"ok\""), std::string::npos) << *health;
  EXPECT_NE(health->find("\"quarantined_pages\""), std::string::npos);
  EXPECT_NE(health->find("\"scrub\""), std::string::npos);
  EXPECT_NE(health->find("\"search_queue_depth\""), std::string::npos);

  auto stats = (*client)->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  for (const char* field :
       {"\"searches\"", "\"batches\"", "\"shed_queue_full\"",
        "\"deadline_expired\"", "\"commit_requests\"",
        "\"gate_read_enters\"", "\"pages_quarantined\""}) {
    EXPECT_NE(stats->find(field), std::string::npos)
        << "missing " << field << " in " << *stats;
  }
  server.Stop();
}

// The headline guarantee: N insert clients and M search clients hammering
// the server concurrently, then every query answered over the settled
// index matches a serial oracle exactly.
TEST(ServerTest, ConcurrentClientsMatchOracle) {
  auto index = MakeIndex();
  ServerOptions options;
  options.commit_every = 64;
  options.max_batch = 16;
  Server server(index.get(), options);
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();

  constexpr int kWriters = 4;
  constexpr int kSearchers = 2;
  constexpr uint64_t kPerWriter = 300;

  // Deterministic per-writer workloads, mirrored into the oracle.
  std::vector<std::vector<std::pair<Rect, TupleId>>> workloads(kWriters);
  oracle::NaiveOracle oracle;
  for (int w = 0; w < kWriters; ++w) {
    Rng rng(1000 + static_cast<uint64_t>(w));
    for (uint64_t i = 0; i < kPerWriter; ++i) {
      const Rect rect = RandomInterval(&rng);
      const TupleId tid = static_cast<TupleId>(w) * kPerWriter + i + 1;
      workloads[static_cast<size_t>(w)].emplace_back(rect, tid);
      oracle.Insert(rect, tid);
    }
  }

  std::atomic<bool> stop_searching{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      auto client = Client::Connect("127.0.0.1", port);
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (const auto& [rect, tid] : workloads[static_cast<size_t>(w)]) {
        if (!(*client)->Insert(rect, tid).ok()) {
          ++failures;
          return;
        }
      }
      if (!(*client)->Commit().ok()) ++failures;
    });
  }
  // Searchers run concurrently with the writers; their results are
  // transient (the snapshot moves) so only protocol health is asserted.
  for (int s = 0; s < kSearchers; ++s) {
    threads.emplace_back([&, s] {
      auto client = Client::Connect("127.0.0.1", port);
      if (!client.ok()) {
        ++failures;
        return;
      }
      Rng rng(77 + static_cast<uint64_t>(s));
      while (!stop_searching.load()) {
        const double x = rng.Uniform(0.0, 900.0);
        const double y = rng.Uniform(0.0, 900.0);
        server::SearchReply reply;
        if (!(*client)->Search(Rect(x, x + 80, y, y + 80), &reply).ok()) {
          ++failures;
          return;
        }
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[static_cast<size_t>(w)].join();
  stop_searching.store(true);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();
  ASSERT_EQ(failures.load(), 0);

  // Settled: every query matches the oracle.
  auto client = Client::Connect("127.0.0.1", port);
  ASSERT_TRUE(client.ok());
  Rng rng(424242);
  for (int q = 0; q < 50; ++q) {
    const double x = rng.Uniform(0.0, 900.0);
    const double y = rng.Uniform(0.0, 900.0);
    const Rect query(x, x + 100, y, y + 100);
    server::SearchReply reply;
    ASSERT_TRUE((*client)->Search(query, &reply).ok());
    EXPECT_FALSE(reply.partial);
    EXPECT_EQ(SortedTids(reply.hits), oracle.Search(query)) << "query " << q;
  }
  server.Stop();
  EXPECT_EQ(index->size(), kWriters * kPerWriter);
}

TEST(ServerTest, DeleteIsServed) {
  auto index = MakeIndex();
  Server server(index.get(), ServerOptions());
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  const Rect rect(10, 20, 5, 5);
  ASSERT_TRUE((*client)->Insert(rect, 7).ok());
  ASSERT_TRUE((*client)->Insert(Rect(50, 60, 5, 5), 8).ok());
  server::SearchReply reply;
  ASSERT_TRUE((*client)->Search(Rect(0, 100, 0, 10), &reply).ok());
  EXPECT_EQ(reply.hits.size(), 2u);

  ASSERT_TRUE((*client)->Delete(rect, 7).ok());
  ASSERT_TRUE((*client)->Search(Rect(0, 100, 0, 10), &reply).ok());
  ASSERT_EQ(reply.hits.size(), 1u);
  EXPECT_EQ(reply.hits[0].tid, 8u);
  server.Stop();
}

// A request whose budget expires while queued is answered
// kDeadlineExceeded — and the connection stays healthy for the next
// request.
TEST(ServerTest, ExpiredDeadlineFailsRequestNotConnection) {
  auto index = MakeIndex();
  ServerOptions options;
  // Test hook: every batch waits 20ms between dequeue and the admission
  // deadline check, so a 1us budget reliably expires in the queue.
  options.admission_delay_us = 20000;
  Server server(index.get(), options);
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  ASSERT_TRUE((*client)->Insert(Rect(10, 20, 5, 5), 1).ok());

  server::SearchReply reply;
  const Status expired =
      (*client)->Search(Rect(0, 100, 0, 10), &reply, /*budget_us=*/1);
  EXPECT_EQ(expired.code(), StatusCode::kDeadlineExceeded)
      << expired.ToString();

  // Same connection, no budget: must succeed.
  ASSERT_TRUE((*client)->Search(Rect(0, 100, 0, 10), &reply).ok());
  EXPECT_EQ(reply.hits.size(), 1u);

  const auto stats = server.stats_snapshot();
  EXPECT_GE(stats.deadline_expired, 1u);
  server.Stop();
}

// Pipelining more requests than the per-connection quota gets the excess
// shed with kResourceExhausted while the admitted ones still complete.
TEST(ServerTest, PerConnectionQuotaShedsPipelinedOverload) {
  auto index = MakeIndex();
  ServerOptions options;
  options.max_inflight_per_conn = 2;
  // Slow the dispatcher so the pipelined burst is all in flight at once.
  options.admission_delay_us = 30000;
  Server server(index.get(), options);
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  constexpr int kBurst = 8;
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_TRUE((*client)->SendSearch(Rect(0, 10, 0, 10)).ok());
  }
  int ok = 0, shed = 0;
  for (int i = 0; i < kBurst; ++i) {
    server::Response resp;
    ASSERT_TRUE((*client)->ReadResponse(&resp).ok());
    if (resp.code == StatusCode::kOk) {
      ++ok;
    } else {
      ASSERT_EQ(resp.code, StatusCode::kResourceExhausted)
          << resp.ToStatus().ToString();
      ++shed;
    }
  }
  EXPECT_GT(ok, 0);
  EXPECT_GT(shed, 0);
  EXPECT_GE(server.stats_snapshot().shed_quota, static_cast<uint64_t>(shed));

  // The connection is still usable after being shed.
  server::SearchReply reply;
  EXPECT_TRUE((*client)->Search(Rect(0, 10, 0, 10), &reply).ok());
  server.Stop();
}

// A malformed frame kills only the offending connection; the server and
// other connections keep serving.
TEST(ServerTest, MalformedFrameDropsConnectionOnly) {
  auto index = MakeIndex();
  Server server(index.get(), ServerOptions());
  ASSERT_TRUE(server.Start().ok());

  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  // Length 3, unknown type 0xee: a protocol violation.
  const uint8_t garbage[] = {3, 0, 0, 0, 0xee, 0x01, 0x02};
  ASSERT_EQ(write(fd, garbage, sizeof(garbage)),
            static_cast<ssize_t>(sizeof(garbage)));
  uint8_t byte = 0;
  EXPECT_EQ(read(fd, &byte, 1), 0);  // Server closed the connection.
  close(fd);

  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto health = (*client)->Health();
  ASSERT_TRUE(health.ok());
  EXPECT_GE(server.stats_snapshot().protocol_errors, 1u);
  server.Stop();
}

// Writes acknowledged after an explicit commit survive stopping the
// server, closing the index, and reopening the file.
TEST(ServerTest, CommittedWritesSurviveReopen) {
  const std::string path =
      testing::TempDir() + "/segidx_server_commit_test.idx";
  std::remove(path.c_str());
  auto created =
      IntervalIndex::CreateOnDisk(IndexKind::kRTree, path, IndexOptions());
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto index = std::move(created).value();

  {
    Server server(index.get(), ServerOptions());
    ASSERT_TRUE(server.Start().ok());
    auto client = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    for (TupleId tid = 1; tid <= 20; ++tid) {
      ASSERT_TRUE((*client)
                      ->Insert(Rect(Interval(10.0 * static_cast<double>(tid),
                                             10.0 * static_cast<double>(tid) +
                                                 5.0),
                                    Interval::Point(1.0)),
                               tid)
                      .ok());
    }
    ASSERT_TRUE((*client)->Commit().ok());
    server.Stop();
  }
  ASSERT_TRUE(index->Close().ok());
  index.reset();

  auto reopened = IntervalIndex::OpenFromDisk(path, IndexOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->size(), 20u);
  std::vector<TupleId> tids;
  ASSERT_TRUE((*reopened)->SearchTuples(Rect(0, 1000, 0, 10), &tids).ok());
  EXPECT_EQ(tids.size(), 20u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace segidx
