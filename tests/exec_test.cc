// QueryEngine / parallel read-path tests. The Concurrent* tests are the
// ones the ThreadSanitizer CI job is aimed at: they overlap many searches
// on one tree through a deliberately tiny buffer pool, so pager latching,
// eviction write-back, and stats counters all run under contention.

#include "exec/query_engine.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/interval_index.h"
#include "workload/datasets.h"

namespace segidx {
namespace {

using core::IndexKind;
using core::IndexOptions;
using core::IntervalIndex;

// A small I1-style workload: 2000 interval records over the paper domain.
std::vector<Rect> TestRects() {
  workload::DatasetSpec spec;
  spec.kind = workload::DatasetKind::kI1;
  spec.count = 2000;
  spec.seed = 7;
  return workload::GenerateDataset(spec);
}

std::unique_ptr<IntervalIndex> BuildIndex(IndexKind kind,
                                          const IndexOptions& options) {
  auto created = IntervalIndex::CreateInMemory(kind, options);
  EXPECT_TRUE(created.ok()) << created.status().ToString();
  auto index = std::move(created).value();
  const std::vector<Rect> rects = TestRects();
  for (size_t i = 0; i < rects.size(); ++i) {
    EXPECT_TRUE(index->Insert(rects[i], static_cast<TupleId>(i)).ok());
  }
  return index;
}

std::vector<Rect> TestQueries(int count) {
  return workload::GenerateQueries(/*qar=*/1.0, /*area=*/1e6, count,
                                   /*seed=*/11);
}

bool SameHits(const std::vector<rtree::SearchHit>& a,
              const std::vector<rtree::SearchHit>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].tid != b[i].tid || !(a[i].rect == b[i].rect)) return false;
  }
  return true;
}

TEST(QueryEngineTest, BatchMatchesSerialSearch) {
  auto index = BuildIndex(IndexKind::kRTree, IndexOptions());
  const std::vector<Rect> queries = TestQueries(64);

  std::vector<std::vector<rtree::SearchHit>> serial(queries.size());
  std::vector<uint64_t> serial_accesses(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(index->tree()
                    ->Search(queries[i], &serial[i], &serial_accesses[i])
                    .ok());
  }

  for (int threads : {1, 2, 4}) {
    std::vector<exec::BatchResult> results;
    ASSERT_TRUE(index->SearchBatch(queries, &results, threads).ok());
    ASSERT_EQ(results.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_TRUE(SameHits(results[i].hits, serial[i]))
          << "query " << i << " at " << threads << " threads";
      EXPECT_EQ(results[i].nodes_accessed, serial_accesses[i]);
    }
  }
}

TEST(QueryEngineTest, EmptyBatchSucceeds) {
  auto index = BuildIndex(IndexKind::kRTree, IndexOptions());
  std::vector<exec::BatchResult> results = {exec::BatchResult{}};
  ASSERT_TRUE(index->SearchBatch({}, &results, 2).ok());
  EXPECT_TRUE(results.empty());
}

TEST(QueryEngineTest, InvalidQuerySurfacesFirstError) {
  auto index = BuildIndex(IndexKind::kRTree, IndexOptions());
  std::vector<Rect> queries = TestQueries(8);
  queries[3] = Rect(10, 0, 10, 0);  // Inverted: invalid.
  std::vector<exec::BatchResult> results;
  const Status st = index->SearchBatch(queries, &results, 4);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(QueryEngineTest, EngineReusableAcrossBatches) {
  auto index = BuildIndex(IndexKind::kRTree, IndexOptions());
  const std::vector<Rect> queries = TestQueries(16);
  std::vector<exec::BatchResult> first, second;
  ASSERT_TRUE(index->SearchBatch(queries, &first, 2).ok());
  ASSERT_TRUE(index->SearchBatch(queries, &second, 2).ok());
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_TRUE(SameHits(first[i].hits, second[i].hits));
  }
}

TEST(QueryEngineTest, BatchAutoFinalizesBufferingSkeleton) {
  IndexOptions options;
  options.skeleton.expected_tuples = 2000;
  // A sample target above the insert count keeps the index buffering, so
  // the batch itself must trigger finalization.
  options.skeleton.prediction_sample = 5000;
  auto index = BuildIndex(IndexKind::kSkeletonRTree, options);
  ASSERT_TRUE(index->skeleton_building());
  const std::vector<Rect> queries = TestQueries(16);
  std::vector<exec::BatchResult> results;
  ASSERT_TRUE(index->SearchBatch(queries, &results, 2).ok());
  EXPECT_FALSE(index->skeleton_building());
  // And it agrees with serial search on the finalized tree.
  for (size_t i = 0; i < queries.size(); ++i) {
    std::vector<rtree::SearchHit> serial;
    ASSERT_TRUE(index->tree()->Search(queries[i], &serial).ok());
    EXPECT_TRUE(SameHits(results[i].hits, serial));
  }
}

// Many threads, one tree, tiny buffer pool: every fetch contends on the
// pager partitions and evictions run continuously. TSan target.
TEST(ConcurrentSearchTest, SearchesRaceFreeUnderTinyPool) {
  IndexOptions options;
  options.pager.buffer_pool_bytes = 16 * 1024;
  options.pager.lru_partitions = 4;
  auto index = BuildIndex(IndexKind::kSRTree, options);
  const std::vector<Rect> queries = TestQueries(32);

  std::vector<std::vector<rtree::SearchHit>> serial(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(index->tree()->Search(queries[i], &serial[i]).ok());
  }

  constexpr int kThreads = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < queries.size(); ++i) {
        const size_t q = (i + static_cast<size_t>(t) * 5) % queries.size();
        std::vector<rtree::SearchHit> hits;
        uint64_t accesses = 0;
        if (!index->tree()->Search(queries[q], &hits, &accesses).ok() ||
            accesses == 0 || !SameHits(hits, serial[q])) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  // Shared stats kept exact under concurrency (one bump per search, plus
  // the serial baseline's own searches).
  EXPECT_EQ(index->tree_stats().searches,
            static_cast<uint64_t>(kThreads + 1) * queries.size());
  EXPECT_EQ(index->pager()->pinned_frames(), 0u);
}

TEST(ConcurrentSearchTest, BatchesOnSkeletonSRTreeMatchSerial) {
  IndexOptions options;
  options.pager.buffer_pool_bytes = 32 * 1024;
  options.skeleton.expected_tuples = 2000;
  auto index = BuildIndex(IndexKind::kSkeletonSRTree, options);
  ASSERT_TRUE(index->Finalize().ok());
  const std::vector<Rect> queries = TestQueries(48);

  std::vector<std::vector<rtree::SearchHit>> serial(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(index->tree()->Search(queries[i], &serial[i]).ok());
  }
  std::vector<exec::BatchResult> results;
  ASSERT_TRUE(index->SearchBatch(queries, &results, 8).ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_TRUE(SameHits(results[i].hits, serial[i])) << "query " << i;
  }
}

}  // namespace
}  // namespace segidx
