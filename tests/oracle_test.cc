#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "oracle/interval_tree.h"
#include "oracle/naive_oracle.h"
#include "oracle/priority_search_tree.h"
#include "oracle/segment_tree.h"

namespace segidx::oracle {
namespace {

TEST(NaiveOracleTest, InsertSearchDelete) {
  NaiveOracle oracle;
  oracle.Insert(Rect(0, 10, 0, 10), 1);
  oracle.Insert(Rect(5, 15, 5, 15), 2);
  oracle.Insert(Rect(100, 110, 100, 110), 3);
  EXPECT_EQ(oracle.Search(Rect(7, 8, 7, 8)),
            (std::vector<TupleId>{1, 2}));
  EXPECT_TRUE(oracle.Delete(Rect(5, 15, 5, 15), 2));
  EXPECT_FALSE(oracle.Delete(Rect(5, 15, 5, 15), 2));
  EXPECT_EQ(oracle.Search(Rect(7, 8, 7, 8)), (std::vector<TupleId>{1}));
  EXPECT_EQ(oracle.size(), 2u);
}

TEST(NaiveOracleTest, DeduplicatesTids) {
  NaiveOracle oracle;
  oracle.Insert(Rect(0, 10, 0, 10), 1);
  oracle.Insert(Rect(5, 15, 5, 15), 1);  // Same tuple, second piece.
  EXPECT_EQ(oracle.Search(Rect(7, 8, 7, 8)), (std::vector<TupleId>{1}));
}

TEST(IntervalTreeTest, BasicStab) {
  IntervalTree tree;
  tree.Insert(Interval(0, 10), 1);
  tree.Insert(Interval(5, 15), 2);
  tree.Insert(Interval(20, 30), 3);
  EXPECT_EQ(tree.Stab(7), (std::vector<TupleId>{1, 2}));
  EXPECT_EQ(tree.Stab(0), (std::vector<TupleId>{1}));
  EXPECT_EQ(tree.Stab(15), (std::vector<TupleId>{2}));
  EXPECT_EQ(tree.Stab(17), std::vector<TupleId>());
  EXPECT_EQ(tree.size(), 3u);
}

TEST(IntervalTreeTest, OverlappingRange) {
  IntervalTree tree;
  tree.Insert(Interval(0, 10), 1);
  tree.Insert(Interval(20, 30), 2);
  tree.Insert(Interval(40, 50), 3);
  EXPECT_EQ(tree.Overlapping(Interval(8, 22)),
            (std::vector<TupleId>{1, 2}));
  EXPECT_EQ(tree.Overlapping(Interval(-5, 100)),
            (std::vector<TupleId>{1, 2, 3}));
  EXPECT_EQ(tree.Overlapping(Interval(11, 19)), std::vector<TupleId>());
}

TEST(IntervalTreeTest, DeleteMaintainsAugmentation) {
  IntervalTree tree;
  tree.Insert(Interval(0, 100), 1);  // The dominating interval.
  tree.Insert(Interval(10, 20), 2);
  tree.Insert(Interval(30, 40), 3);
  EXPECT_TRUE(tree.Delete(Interval(0, 100), 1));
  EXPECT_EQ(tree.size(), 2u);
  // max_hi must have been recomputed; a stab at 90 finds nothing.
  EXPECT_EQ(tree.Stab(90), std::vector<TupleId>());
  EXPECT_EQ(tree.Stab(35), (std::vector<TupleId>{3}));
  EXPECT_FALSE(tree.Delete(Interval(0, 100), 1));
}

TEST(IntervalTreeTest, RandomizedAgainstNaive) {
  IntervalTree tree;
  NaiveOracle naive;
  Rng rng(17);
  std::vector<std::pair<Interval, TupleId>> live;
  for (int step = 0; step < 4000; ++step) {
    const int op = static_cast<int>(rng.UniformInt(0, 3));
    if (op != 0 || live.empty()) {
      const Coord lo = rng.Uniform(0, 1000);
      const Interval iv(lo, lo + rng.Exponential(50, 500));
      const TupleId tid = static_cast<TupleId>(step);
      tree.Insert(iv, tid);
      naive.Insert(Rect(iv, Interval::Point(0)), tid);
      live.emplace_back(iv, tid);
    } else {
      const size_t pick =
          static_cast<size_t>(rng.UniformInt(0, live.size() - 1));
      ASSERT_TRUE(tree.Delete(live[pick].first, live[pick].second));
      ASSERT_TRUE(naive.Delete(Rect(live[pick].first, Interval::Point(0)),
                               live[pick].second));
      live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
    }
    if (step % 100 == 0) {
      const Coord probe_lo = rng.Uniform(0, 1000);
      const Interval probe(probe_lo, probe_lo + rng.Uniform(0, 100));
      EXPECT_EQ(tree.Overlapping(probe),
                naive.Search(Rect(probe, Interval::Point(0))));
    }
  }
  EXPECT_EQ(tree.size(), live.size());
}

TEST(SegmentTreeTest, StabBasics) {
  SegmentTree tree({0, 10, 20, 30, 40});
  ASSERT_TRUE(tree.Insert(Interval(0, 20), 1).ok());
  ASSERT_TRUE(tree.Insert(Interval(10, 40), 2).ok());
  ASSERT_TRUE(tree.Insert(Interval(20, 20), 3).ok());  // Point interval.
  EXPECT_EQ(tree.Stab(5), (std::vector<TupleId>{1}));
  EXPECT_EQ(tree.Stab(10), (std::vector<TupleId>{1, 2}));
  EXPECT_EQ(tree.Stab(15), (std::vector<TupleId>{1, 2}));
  EXPECT_EQ(tree.Stab(20), (std::vector<TupleId>{1, 2, 3}));
  EXPECT_EQ(tree.Stab(25), (std::vector<TupleId>{2}));
  EXPECT_EQ(tree.Stab(40), (std::vector<TupleId>{2}));
  EXPECT_EQ(tree.Stab(45), std::vector<TupleId>());
  EXPECT_EQ(tree.Stab(-1), std::vector<TupleId>());
}

TEST(SegmentTreeTest, RejectsForeignEndpoints) {
  SegmentTree tree({0, 10, 20});
  EXPECT_FALSE(tree.Insert(Interval(0, 15), 1).ok());
  EXPECT_FALSE(tree.Insert(Interval(5, 10), 1).ok());
  EXPECT_FALSE(tree.Insert(Interval(10, 5), 1).ok());  // Invalid interval.
  EXPECT_EQ(tree.size(), 0u);
}

TEST(SegmentTreeTest, EndpointsDeduplicated) {
  SegmentTree tree({10, 10, 20, 20, 0});
  EXPECT_EQ(tree.endpoint_count(), 3u);
}

TEST(SegmentTreeTest, RandomizedAgainstIntervalTree) {
  // Cross-validate the two geometry structures against each other.
  Rng rng(23);
  std::vector<Coord> endpoints;
  for (int i = 0; i <= 200; ++i) endpoints.push_back(i * 5.0);
  SegmentTree seg(endpoints);
  IntervalTree itree;
  for (int i = 0; i < 1500; ++i) {
    const int a = static_cast<int>(rng.UniformInt(0, 200));
    const int b = static_cast<int>(rng.UniformInt(0, 200));
    const Interval iv(std::min(a, b) * 5.0, std::max(a, b) * 5.0);
    ASSERT_TRUE(seg.Insert(iv, static_cast<TupleId>(i)).ok());
    itree.Insert(iv, static_cast<TupleId>(i));
  }
  for (int probe = 0; probe < 300; ++probe) {
    const Coord point = rng.Uniform(-10, 1010);
    EXPECT_EQ(seg.Stab(point), itree.Stab(point)) << point;
  }
}

TEST(PrioritySearchTreeTest, BasicStab) {
  PrioritySearchTree pst({{Interval(0, 10), 1},
                          {Interval(5, 15), 2},
                          {Interval(20, 30), 3},
                          {Interval(0, 100), 4}});
  EXPECT_EQ(pst.Stab(7), (std::vector<TupleId>{1, 2, 4}));
  EXPECT_EQ(pst.Stab(0), (std::vector<TupleId>{1, 4}));
  EXPECT_EQ(pst.Stab(17), (std::vector<TupleId>{4}));
  EXPECT_EQ(pst.Stab(30), (std::vector<TupleId>{3, 4}));
  EXPECT_EQ(pst.Stab(101), std::vector<TupleId>());
  EXPECT_EQ(pst.size(), 4u);
}

TEST(PrioritySearchTreeTest, RawQuerySemantics) {
  // Query(x_max, y_min): lo <= x_max and hi >= y_min.
  PrioritySearchTree pst({{Interval(0, 5), 1},
                          {Interval(10, 20), 2},
                          {Interval(2, 30), 3}});
  EXPECT_EQ(pst.Query(11, 18), (std::vector<TupleId>{2, 3}));
  EXPECT_EQ(pst.Query(1, 0), (std::vector<TupleId>{1}));  // lo=2 > 1 excludes 3.
  EXPECT_EQ(pst.Query(100, 100), std::vector<TupleId>());
}

TEST(PrioritySearchTreeTest, EmptyAndSingleton) {
  PrioritySearchTree empty({});
  EXPECT_EQ(empty.Stab(5), std::vector<TupleId>());
  PrioritySearchTree one({{Interval::Point(5), 9}});
  EXPECT_EQ(one.Stab(5), (std::vector<TupleId>{9}));
  EXPECT_EQ(one.Stab(5.1), std::vector<TupleId>());
}

TEST(PrioritySearchTreeTest, DuplicateLowEndpoints) {
  std::vector<std::pair<Interval, TupleId>> intervals;
  for (int i = 0; i < 50; ++i) {
    intervals.emplace_back(Interval(10, 10 + i), static_cast<TupleId>(i));
  }
  PrioritySearchTree pst(intervals);
  EXPECT_EQ(pst.Stab(10).size(), 50u);
  EXPECT_EQ(pst.Stab(10 + 25).size(), 25u);  // hi >= 35: i in [25, 49].
}

TEST(PrioritySearchTreeTest, RandomizedAgainstIntervalTree) {
  Rng rng(31);
  std::vector<std::pair<Interval, TupleId>> intervals;
  IntervalTree itree;
  for (int i = 0; i < 3000; ++i) {
    const Coord lo = rng.Uniform(0, 1000);
    const Interval iv(lo, lo + rng.Exponential(40, 800));
    intervals.emplace_back(iv, static_cast<TupleId>(i));
    itree.Insert(iv, static_cast<TupleId>(i));
  }
  PrioritySearchTree pst(intervals);
  for (int probe = 0; probe < 500; ++probe) {
    const Coord v = rng.Uniform(-10, 1900);
    EXPECT_EQ(pst.Stab(v), itree.Stab(v)) << v;
  }
}

}  // namespace
}  // namespace segidx::oracle
