#include "common/status.h"

#include <gtest/gtest.h>

namespace segidx {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status st = IoError("disk on fire");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_EQ(st.message(), "disk on fire");
  EXPECT_EQ(st.ToString(), "IO_ERROR: disk on fire");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(InvalidArgumentError("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(CorruptionError("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(IoError("a"), IoError("a"));
  EXPECT_FALSE(IoError("a") == IoError("b"));
  EXPECT_FALSE(IoError("a") == CorruptionError("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFoundError("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

namespace helpers {

Status FailIfNegative(int x) {
  if (x < 0) return InvalidArgumentError("negative");
  return Status::OK();
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return InvalidArgumentError("odd");
  return x / 2;
}

Status Chain(int x, int* out) {
  SEGIDX_RETURN_IF_ERROR(FailIfNegative(x));
  SEGIDX_ASSIGN_OR_RETURN(int half, HalveEven(x));
  *out = half;
  return Status::OK();
}

}  // namespace helpers

TEST(ResultTest, MacrosPropagateErrors) {
  int out = 0;
  EXPECT_TRUE(helpers::Chain(4, &out).ok());
  EXPECT_EQ(out, 2);
  EXPECT_EQ(helpers::Chain(-1, &out).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(helpers::Chain(3, &out).message(), "odd");
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IO_ERROR");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCorruption), "CORRUPTION");
}

}  // namespace
}  // namespace segidx
