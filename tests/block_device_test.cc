#include "storage/block_device.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace segidx::storage {
namespace {

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

class BlockDeviceTest : public testing::TestWithParam<bool> {
 protected:
  // Parameter selects the backend: true = file, false = memory.
  std::unique_ptr<BlockDevice> MakeDevice(const char* name) {
    if (!GetParam()) return std::make_unique<MemoryBlockDevice>();
    path_ = TempPath(name);
    std::remove(path_.c_str());
    auto result = FileBlockDevice::Open(path_, /*create=*/true);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  std::string path_;
};

TEST_P(BlockDeviceTest, WriteThenRead) {
  auto device = MakeDevice("dev_write_read");
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  ASSERT_TRUE(device->Write(100, payload.data(), payload.size()).ok());
  EXPECT_EQ(device->size(), 105u);

  std::vector<uint8_t> out(5);
  ASSERT_TRUE(device->Read(100, 5, out.data()).ok());
  EXPECT_EQ(out, payload);
}

TEST_P(BlockDeviceTest, ReadPastEndFails) {
  auto device = MakeDevice("dev_read_past_end");
  uint8_t byte = 0;
  ASSERT_TRUE(device->Write(0, &byte, 1).ok());
  uint8_t out[4];
  const Status st = device->Read(0, 4, out);
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
}

TEST_P(BlockDeviceTest, OverwriteInPlace) {
  auto device = MakeDevice("dev_overwrite");
  std::vector<uint8_t> a(16, 0xaa);
  std::vector<uint8_t> b(4, 0xbb);
  ASSERT_TRUE(device->Write(0, a.data(), a.size()).ok());
  ASSERT_TRUE(device->Write(4, b.data(), b.size()).ok());
  std::vector<uint8_t> out(16);
  ASSERT_TRUE(device->Read(0, 16, out.data()).ok());
  EXPECT_EQ(out[3], 0xaa);
  EXPECT_EQ(out[4], 0xbb);
  EXPECT_EQ(out[7], 0xbb);
  EXPECT_EQ(out[8], 0xaa);
  EXPECT_EQ(device->size(), 16u);
}

TEST_P(BlockDeviceTest, TruncateGrowsWithZeros) {
  auto device = MakeDevice("dev_truncate_grow");
  uint8_t byte = 0xff;
  ASSERT_TRUE(device->Write(0, &byte, 1).ok());
  ASSERT_TRUE(device->Truncate(8).ok());
  EXPECT_EQ(device->size(), 8u);
  std::vector<uint8_t> out(8);
  ASSERT_TRUE(device->Read(0, 8, out.data()).ok());
  EXPECT_EQ(out[0], 0xff);
  for (int i = 1; i < 8; ++i) EXPECT_EQ(out[i], 0) << i;
}

TEST_P(BlockDeviceTest, TruncateShrinks) {
  auto device = MakeDevice("dev_truncate_shrink");
  std::vector<uint8_t> data(32, 1);
  ASSERT_TRUE(device->Write(0, data.data(), data.size()).ok());
  ASSERT_TRUE(device->Truncate(8).ok());
  EXPECT_EQ(device->size(), 8u);
  uint8_t out;
  EXPECT_EQ(device->Read(16, 1, &out).code(), StatusCode::kOutOfRange);
}

TEST_P(BlockDeviceTest, SyncSucceeds) {
  auto device = MakeDevice("dev_sync");
  uint8_t byte = 1;
  ASSERT_TRUE(device->Write(0, &byte, 1).ok());
  EXPECT_TRUE(device->Sync().ok());
}

INSTANTIATE_TEST_SUITE_P(Backends, BlockDeviceTest, testing::Values(true, false),
                         [](const testing::TestParamInfo<bool>& info) {
                           return info.param ? "File" : "Memory";
                         });

TEST(FileBlockDeviceTest, PersistsAcrossReopen) {
  const std::string path = TempPath("dev_persist");
  std::remove(path.c_str());
  {
    auto device = FileBlockDevice::Open(path, /*create=*/true).value();
    const std::vector<uint8_t> payload = {9, 8, 7};
    ASSERT_TRUE(device->Write(10, payload.data(), payload.size()).ok());
    ASSERT_TRUE(device->Sync().ok());
  }
  {
    auto device = FileBlockDevice::Open(path, /*create=*/false).value();
    EXPECT_EQ(device->size(), 13u);
    std::vector<uint8_t> out(3);
    ASSERT_TRUE(device->Read(10, 3, out.data()).ok());
    EXPECT_EQ(out, (std::vector<uint8_t>{9, 8, 7}));
  }
}

TEST(FileBlockDeviceTest, OpenMissingFileFails) {
  const auto result =
      FileBlockDevice::Open(TempPath("no_such_file_xyz"), /*create=*/false);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace segidx::storage
