// Failure injection: corrupted or truncated index files must surface as
// clean Status errors (kCorruption / kIoError / kOutOfRange), never as
// crashes or silent wrong answers.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/interval_index.h"
#include "storage/block_device.h"
#include "storage/coding.h"
#include "storage/pager.h"

namespace segidx {
namespace {

using core::IndexKind;
using core::IndexOptions;
using core::IntervalIndex;

// Builds a small persisted index and returns its path.
std::string BuildIndexFile(const char* name, IndexKind kind) {
  const std::string path = testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  IndexOptions options;
  options.skeleton.expected_tuples = 500;
  options.skeleton.prediction_sample = 50;
  auto index = IntervalIndex::CreateOnDisk(kind, path, options).value();
  for (int i = 0; i < 500; ++i) {
    const double x = (i % 100) * 10.0;
    const double y = (i / 100) * 100.0;
    EXPECT_TRUE(index->Insert(Rect(x, x + 5, y, y + 5), i).ok());
  }
  EXPECT_TRUE(index->Flush().ok());
  return path;
}

// Flips bytes at `offset`.
void CorruptFile(const std::string& path, uint64_t offset, size_t n) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_TRUE(f != nullptr);
  ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
  std::vector<unsigned char> junk(n, 0xff);
  ASSERT_EQ(std::fwrite(junk.data(), 1, n, f), n);
  std::fclose(f);
}

TEST(CorruptionTest, GarbageSuperblockIsRejected) {
  const std::string path =
      BuildIndexFile("corrupt_super", IndexKind::kRTree);
  // Format v2 keeps two superblock slots (blocks 0 and 1); recovery falls
  // back to the surviving slot, so reject-on-open needs both damaged.
  CorruptFile(path, 0, 64);
  CorruptFile(path, 1024, 64);
  const auto result = IntervalIndex::OpenFromDisk(path, IndexOptions());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(CorruptionTest, TruncatedFileIsRejected) {
  const std::string path =
      BuildIndexFile("corrupt_truncated", IndexKind::kRTree);
  ASSERT_EQ(::truncate(path.c_str(), 512), 0);
  const auto result = IntervalIndex::OpenFromDisk(path, IndexOptions());
  EXPECT_FALSE(result.ok());
}

TEST(CorruptionTest, TruncatedBodySurfacesOnAccess) {
  const std::string path =
      BuildIndexFile("corrupt_body", IndexKind::kRTree);
  // Keep the superblock but drop most node pages.
  ASSERT_EQ(::truncate(path.c_str(), 4096), 0);
  auto opened = IntervalIndex::OpenFromDisk(path, IndexOptions());
  if (!opened.ok()) return;  // Rejecting at open is fine too.
  std::vector<rtree::SearchHit> hits;
  const Status st = (*opened)->Search(Rect(0, 1000, 0, 1000), &hits);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
}

TEST(CorruptionTest, CorruptNodeEntryCountIsRejected) {
  const std::string path =
      BuildIndexFile("corrupt_node", IndexKind::kRTree);
  // Overwrite the entry-count field of every block after the superblock
  // with an impossible value; any node read must fail with kCorruption.
  for (uint64_t block = 1; block < 20; ++block) {
    CorruptFile(path, block * 1024 + 2, 2);
  }
  auto opened = IntervalIndex::OpenFromDisk(path, IndexOptions());
  if (!opened.ok()) {
    EXPECT_EQ(opened.status().code(), StatusCode::kCorruption);
    return;
  }
  std::vector<rtree::SearchHit> hits;
  const Status st = (*opened)->Search(Rect(0, 1000, 0, 1000), &hits);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
}

TEST(CorruptionTest, SingleFlippedPayloadByteIsDetected) {
  // A bit flip inside a node's entry payload (not its header) must be
  // caught by the page checksum.
  const std::string path =
      BuildIndexFile("corrupt_payload", IndexKind::kRTree);
  bool detected = false;
  // Damage the middle of several node pages; at least one belongs to a
  // node on the search path.
  for (uint64_t block = 1; block < 40; ++block) {
    CorruptFile(path, block * 1024 + 500, 1);
  }
  auto opened = IntervalIndex::OpenFromDisk(path, IndexOptions());
  if (!opened.ok()) {
    detected = opened.status().code() == StatusCode::kCorruption;
  } else {
    std::vector<rtree::SearchHit> hits;
    const Status st = (*opened)->Search(Rect(0, 1000, 0, 1000), &hits);
    detected = !st.ok() && st.code() == StatusCode::kCorruption;
    if (!st.ok()) {
      EXPECT_NE(st.message().find("checksum"), std::string::npos)
          << st.ToString();
    }
  }
  EXPECT_TRUE(detected);
}

TEST(CorruptionTest, MissingFacadeMetaIsRejected) {
  const std::string path = testing::TempDir() + "/corrupt_no_meta";
  std::remove(path.c_str());
  // A valid pager file that never had a tree written to it.
  {
    auto pager = storage::Pager::Create(
                     storage::FileBlockDevice::Open(path, true).value(),
                     storage::PagerOptions())
                     .value();
    ASSERT_TRUE(pager->Checkpoint().ok());
  }
  const auto result = IntervalIndex::OpenFromDisk(path, IndexOptions());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(CorruptionTest, UnknownIndexKindIsRejected) {
  const std::string path =
      BuildIndexFile("corrupt_kind", IndexKind::kSRTree);
  // The facade metadata tail is [..., 'C', 'O', kind, built]; find and
  // break the kind byte via the pager's user-metadata API.
  {
    auto pager = storage::Pager::Open(
                     storage::FileBlockDevice::Open(path, false).value(),
                     storage::PagerOptions())
                     .value();
    std::vector<uint8_t> meta = pager->user_meta();
    ASSERT_GE(meta.size(), 4u);
    meta[meta.size() - 2] = 0x7f;  // Invalid kind.
    ASSERT_TRUE(pager->SetUserMeta(meta.data(), meta.size()).ok());
    ASSERT_TRUE(pager->Checkpoint().ok());
  }
  const auto result = IntervalIndex::OpenFromDisk(path, IndexOptions());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(CorruptionTest, RootPointerReservedBitsAreRejected) {
  const std::string path =
      BuildIndexFile("corrupt_root_ptr", IndexKind::kRTree);
  // The tree metadata stores the root PageId at offset 8 as a packed u64
  // whose bits 40-63 are reserved-zero. Flipping them must surface as a
  // clean corruption error at open, not as an aliased page address.
  {
    auto pager = storage::Pager::Open(
                     storage::FileBlockDevice::Open(path, false).value(),
                     storage::PagerOptions())
                     .value();
    std::vector<uint8_t> meta = pager->user_meta();
    ASSERT_GE(meta.size(), 16u);
    const uint64_t root = storage::DecodeU64(meta.data() + 8);
    storage::EncodeU64(meta.data() + 8,
                       root | (uint64_t{0xabcd} << 44));
    ASSERT_TRUE(pager->SetUserMeta(meta.data(), meta.size()).ok());
    ASSERT_TRUE(pager->Checkpoint().ok());
  }
  const auto result = IntervalIndex::OpenFromDisk(path, IndexOptions());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(CorruptionTest, IntactFileStillOpensAfterFailedAttempts) {
  // Sanity: the failure tests above must not be rejecting valid files.
  const std::string path =
      BuildIndexFile("corrupt_control", IndexKind::kSkeletonSRTree);
  IndexOptions options;
  auto opened = IntervalIndex::OpenFromDisk(path, options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ((*opened)->size(), 500u);
  EXPECT_TRUE((*opened)->CheckInvariants().ok());
}

}  // namespace
}  // namespace segidx
