// Focused tests for the coalescing pass (paper Section 4 adaptation):
// chain merging, least-frequently-modified candidate selection, and
// spanning-record re-homing when merges restructure a parent.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "oracle/naive_oracle.h"
#include "srtree/srtree.h"
#include "tests/test_util.h"
#include "workload/datasets.h"

namespace segidx::rtree {
namespace {

using oracle::NaiveOracle;
using test_util::MakeMemoryPager;
using test_util::Tids;

// A 5x5 skeleton grid under one root.
SkeletonSpec Grid5x5() {
  std::vector<Coord> bounds;
  for (int i = 0; i <= 5; ++i) bounds.push_back(i * 20.0);
  SkeletonSpec spec;
  spec.levels.push_back(SkeletonLevel{bounds, bounds});
  return spec;
}

TEST(CoalesceChainTest, EmptyGridCollapsesInOnePass) {
  auto pager = MakeMemoryPager();
  auto tree = RTree::Create(pager.get(), TreeOptions()).value();
  ASSERT_TRUE(tree->PreBuild(Grid5x5()).ok());
  EXPECT_EQ(tree->CountNodesPerLevel().value()[0], 25u);

  // A single candidate can absorb every adjacent sibling in a chain.
  const auto merged = tree->CoalesceSparseLeaves(25);
  ASSERT_TRUE(merged.ok());
  // 25 empty cells collapse dramatically (each candidate chain-merges its
  // whole neighborhood).
  EXPECT_GE(*merged, 20);
  EXPECT_LE(tree->CountNodesPerLevel().value()[0], 5u);
  ASSERT_TRUE(tree->CheckInvariants().ok());
}

TEST(CoalesceChainTest, StopsAtLeafCapacity) {
  auto pager = MakeMemoryPager();
  auto tree = RTree::Create(pager.get(), TreeOptions()).value();
  ASSERT_TRUE(tree->PreBuild(Grid5x5()).ok());
  // 10 records in every cell: any merge of 3 cells would exceed the
  // 25-record leaf capacity, so only pairs can form.
  Rng rng(3);
  TupleId tid = 0;
  for (int cx = 0; cx < 5; ++cx) {
    for (int cy = 0; cy < 5; ++cy) {
      for (int i = 0; i < 10; ++i) {
        const Coord x = cx * 20 + rng.Uniform(1, 19);
        const Coord y = cy * 20 + rng.Uniform(1, 19);
        ASSERT_TRUE(tree->Insert(Rect::Point(x, y), tid++).ok());
      }
    }
  }
  const auto merged = tree->CoalesceSparseLeaves(25);
  ASSERT_TRUE(merged.ok());
  const auto leaves = tree->CountNodesPerLevel().value()[0];
  // 250 records / 25 capacity = 10 leaves minimum; pairs-only merging from
  // 25 cells cannot go below 13.
  EXPECT_GE(leaves, 13u);
  EXPECT_LT(leaves, 25u);
  ASSERT_TRUE(tree->CheckInvariants().ok());
}

TEST(CoalesceChainTest, PrefersLeastFrequentlyModifiedLeaves) {
  auto pager = MakeMemoryPager();
  auto tree = RTree::Create(pager.get(), TreeOptions()).value();
  ASSERT_TRUE(tree->PreBuild(Grid5x5()).ok());
  // Hammer the four corner cells with inserts; leave the rest sparse.
  Rng rng(5);
  TupleId tid = 0;
  for (int i = 0; i < 20; ++i) {
    for (const auto& [cx, cy] :
         std::vector<std::pair<int, int>>{{0, 0}, {4, 0}, {0, 4}, {4, 4}}) {
      const Coord x = cx * 20 + rng.Uniform(1, 19);
      const Coord y = cy * 20 + rng.Uniform(1, 19);
      ASSERT_TRUE(tree->Insert(Rect::Point(x, y), tid++).ok());
    }
  }
  // With only 4 candidates examined, the pass must pick (and merge) among
  // the cold middle cells, never the hot corners.
  const auto merged = tree->CoalesceSparseLeaves(4);
  ASSERT_TRUE(merged.ok());
  EXPECT_GT(*merged, 0);
  ASSERT_TRUE(tree->CheckInvariants().ok());

  // The hot corners kept their records findable.
  std::vector<SearchHit> hits;
  ASSERT_TRUE(tree->Search(Rect(0, 100, 0, 100), &hits).ok());
  EXPECT_EQ(hits.size(), 80u);
}

TEST(CoalesceChainTest, RehomesSpanningRecordsOnMerge) {
  auto pager = MakeMemoryPager();
  auto tree = srtree::SRTree::Create(pager.get(), TreeOptions()).value();
  ASSERT_TRUE(tree->PreBuild(Grid5x5()).ok());
  NaiveOracle oracle;
  TupleId tid = 0;
  Rng rng(7);
  // Horizontal segments spanning individual cells become spanning records
  // linked to those cells on the root.
  for (int i = 0; i < 40; ++i) {
    const Coord y = rng.Uniform(0, 100);
    const Coord lo = rng.Uniform(0, 60);
    const Rect r = Rect::Segment1D(lo, lo + rng.Uniform(22, 40), y);
    ASSERT_TRUE(tree->Insert(r, tid).ok());
    oracle.Insert(r, tid);
    ++tid;
  }
  ASSERT_GT(tree->stats().spanning_placed, 0u);

  // Merging cells invalidates some linked branches; relink/demote must
  // keep every record findable and invariants intact.
  const auto merged = tree->CoalesceSparseLeaves(25);
  ASSERT_TRUE(merged.ok());
  EXPECT_GT(*merged, 0);
  ASSERT_TRUE(tree->CheckInvariants().ok());
  for (int probe = 0; probe < 100; ++probe) {
    const Rect q = Rect::Point(rng.Uniform(0, 100), rng.Uniform(0, 100));
    std::vector<SearchHit> hits;
    ASSERT_TRUE(tree->Search(q, &hits).ok());
    EXPECT_EQ(Tids(hits), oracle.Search(q));
  }
}

TEST(CoalesceChainTest, NoCandidatesIsANoOp) {
  auto pager = MakeMemoryPager();
  auto tree = RTree::Create(pager.get(), TreeOptions()).value();
  // Single-leaf tree: nothing to coalesce.
  ASSERT_TRUE(tree->Insert(Rect(0, 1, 0, 1), 1).ok());
  EXPECT_EQ(tree->CoalesceSparseLeaves(10).value(), 0);
  EXPECT_EQ(tree->CoalesceSparseLeaves(0).value(), 0);
}

}  // namespace
}  // namespace segidx::rtree
