#include "common/histogram.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace segidx {
namespace {

TEST(HistogramTest, CountsAndClamping) {
  Histogram h(Interval(0, 100), 10);
  h.Add(5);
  h.Add(15);
  h.Add(15);
  h.Add(-3);   // Clamped into bucket 0.
  h.Add(150);  // Clamped into the last bucket.
  EXPECT_EQ(h.total_count(), 5);
  EXPECT_EQ(h.bucket(0), 2);
  EXPECT_EQ(h.bucket(1), 2);
  EXPECT_EQ(h.bucket(9), 1);
}

TEST(HistogramTest, BucketRangesTileTheDomain) {
  Histogram h(Interval(0, 100), 7);
  Coord prev_hi = 0;
  for (int i = 0; i < h.bucket_count(); ++i) {
    const Interval range = h.BucketRange(i);
    EXPECT_EQ(range.lo, prev_hi);
    prev_hi = range.hi;
  }
  EXPECT_EQ(prev_hi, 100);
}

TEST(HistogramTest, EmptyHistogramGivesEquiWidthBoundaries) {
  Histogram h(Interval(0, 100), 10);
  const std::vector<Coord> bounds = h.EquiDepthBoundaries(4);
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_EQ(bounds[0], 0);
  EXPECT_EQ(bounds[1], 25);
  EXPECT_EQ(bounds[2], 50);
  EXPECT_EQ(bounds[3], 75);
  EXPECT_EQ(bounds[4], 100);
}

TEST(HistogramTest, UniformDataGivesRoughlyEqualBoundaries) {
  Histogram h(Interval(0, 1000), 100);
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) h.Add(rng.Uniform(0, 1000));
  const std::vector<Coord> bounds = h.EquiDepthBoundaries(10);
  ASSERT_EQ(bounds.size(), 11u);
  for (int p = 1; p < 10; ++p) {
    EXPECT_NEAR(bounds[p], p * 100.0, 15.0);
  }
}

TEST(HistogramTest, SkewedDataGivesSkewedBoundaries) {
  // Exponential mass concentrates near zero, so equi-depth cells must be
  // narrow at the low end and wide at the high end — the paper's Figure 6.
  Histogram h(Interval(0, 100000), 100);
  Rng rng(5);
  for (int i = 0; i < 100000; ++i) h.Add(rng.Exponential(7000, 100000));
  const std::vector<Coord> bounds = h.EquiDepthBoundaries(10);
  ASSERT_EQ(bounds.size(), 11u);
  const Coord first_cell = bounds[1] - bounds[0];
  const Coord last_cell = bounds[10] - bounds[9];
  EXPECT_LT(first_cell, 2000);
  EXPECT_GT(last_cell, 20000);
}

TEST(HistogramTest, BoundariesAreStrictlyIncreasing) {
  Histogram h(Interval(0, 100), 10);
  // All mass in a single spot: degenerate quantiles.
  for (int i = 0; i < 1000; ++i) h.Add(50);
  const std::vector<Coord> bounds = h.EquiDepthBoundaries(8);
  ASSERT_EQ(bounds.size(), 9u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]);
  }
  EXPECT_EQ(bounds.front(), 0);
}

TEST(HistogramTest, MassInPrefixStillCoversDomain) {
  Histogram h(Interval(0, 100), 10);
  for (int i = 0; i < 100; ++i) h.Add(1.0);
  const std::vector<Coord> bounds = h.EquiDepthBoundaries(5);
  ASSERT_EQ(bounds.size(), 6u);
  EXPECT_EQ(bounds.back(), 100);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]);
  }
}

TEST(HistogramDeathTest, ZeroBucketCountIsRejectedBeforeDividing) {
  // The constructor must CHECK-fail on bucket_count == 0 instead of
  // dividing by zero while initializing the bucket width.
  EXPECT_DEATH(Histogram(Interval(0, 100), 0), "bucket_count");
}

TEST(HistogramDeathTest, EmptyDomainIsRejected) {
  EXPECT_DEATH(Histogram(Interval(5, 5), 4), "length");
}

TEST(HistogramTest, AddNBulk) {
  Histogram h(Interval(0, 10), 2);
  h.AddN(1, 50);
  h.AddN(9, 25);
  EXPECT_EQ(h.total_count(), 75);
  EXPECT_EQ(h.bucket(0), 50);
  EXPECT_EQ(h.bucket(1), 25);
}

}  // namespace
}  // namespace segidx
