#include "rtree/node.h"

#include <vector>

#include <gtest/gtest.h>

namespace segidx::rtree {
namespace {

TEST(NodeCapacityTest, PaperNodeSizes) {
  // 1 KB leaf: (1024 - 8) / 40 = 25 records.
  EXPECT_EQ(NodeCapacity::LeafEntries(1024), 25u);
  // 2 KB non-leaf with spanning records: (2048 - 8) / 48 = 42 slots.
  EXPECT_EQ(NodeCapacity::NonLeafSlots(2048), 42u);
  // 2 KB branch-only non-leaf: (2048 - 8) / 40 = 51 branches.
  EXPECT_EQ(NodeCapacity::BranchOnlySlots(2048), 51u);
}

TEST(NodeTest, LeafSerializeRoundTrip) {
  Node node;
  node.level = 0;
  for (int i = 0; i < 25; ++i) {
    LeafEntry e;
    e.rect = Rect(i, i + 1, 2.0 * i, 2.0 * i + 0.5);
    e.tid = static_cast<TupleId>(1000 + i);
    node.records.push_back(e);
  }
  std::vector<uint8_t> buf(1024, 0xcd);
  ASSERT_TRUE(node.Serialize(buf.data(), buf.size()).ok());

  auto back = Node::Deserialize(buf.data(), buf.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->level, 0);
  ASSERT_EQ(back->records.size(), 25u);
  for (int i = 0; i < 25; ++i) {
    EXPECT_EQ(back->records[static_cast<size_t>(i)].rect,
              node.records[static_cast<size_t>(i)].rect);
    EXPECT_EQ(back->records[static_cast<size_t>(i)].tid,
              node.records[static_cast<size_t>(i)].tid);
  }
}

TEST(NodeTest, NonLeafSerializeRoundTripWithSpanning) {
  Node node;
  node.level = 2;
  for (int i = 0; i < 10; ++i) {
    BranchEntry b;
    b.rect = Rect(10.0 * i, 10.0 * i + 9, 0, 100);
    b.child.block = static_cast<uint32_t>(100 + i);
    b.child.size_class = 1;
    node.branches.push_back(b);
  }
  for (int i = 0; i < 5; ++i) {
    SpanningEntry s;
    s.rect = Rect(10.0 * i, 10.0 * i + 9.5, 40, 50);
    s.tid = static_cast<TupleId>(7000 + i);
    s.linked_child = node.branches[static_cast<size_t>(i)].child.Encode();
    node.spanning.push_back(s);
  }
  std::vector<uint8_t> buf(2048, 0);
  ASSERT_TRUE(node.Serialize(buf.data(), buf.size()).ok());

  auto back = Node::Deserialize(buf.data(), buf.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->level, 2);
  ASSERT_EQ(back->branches.size(), 10u);
  ASSERT_EQ(back->spanning.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(back->spanning[i].rect, node.spanning[i].rect);
    EXPECT_EQ(back->spanning[i].tid, node.spanning[i].tid);
    EXPECT_EQ(back->spanning[i].linked_child, node.spanning[i].linked_child);
  }
  EXPECT_EQ(back->branches[3].child.block, 103u);
}

TEST(NodeTest, SerializeFailsWhenTooBig) {
  Node node;
  node.level = 0;
  for (int i = 0; i < 26; ++i) {
    node.records.push_back(LeafEntry{Rect(0, 1, 0, 1), 1});
  }
  std::vector<uint8_t> buf(1024);
  EXPECT_FALSE(node.Serialize(buf.data(), buf.size()).ok());
}

TEST(NodeTest, DeserializeRejectsCorruptCounts) {
  Node node;
  node.level = 0;
  node.records.push_back(LeafEntry{Rect(0, 1, 0, 1), 1});
  std::vector<uint8_t> buf(1024, 0);
  ASSERT_TRUE(node.Serialize(buf.data(), buf.size()).ok());
  // Claim far more entries than fit.
  buf[2] = 0xff;
  buf[3] = 0x7f;
  EXPECT_FALSE(Node::Deserialize(buf.data(), buf.size()).ok());
}

TEST(NodeTest, DeserializeRejectsLeafWithSpanning) {
  std::vector<uint8_t> buf(1024, 0);
  // level = 0, entries = 0, spanning = 3.
  buf[4] = 3;
  EXPECT_FALSE(Node::Deserialize(buf.data(), buf.size()).ok());
}

TEST(NodeTest, ComputeMbrCoversEverything) {
  Node node;
  node.level = 1;
  BranchEntry b1;
  b1.rect = Rect(0, 10, 0, 10);
  b1.child.block = 1;
  BranchEntry b2;
  b2.rect = Rect(20, 30, 5, 15);
  b2.child.block = 2;
  node.branches = {b1, b2};
  SpanningEntry s;
  s.rect = Rect(0, 30, 12, 20);
  s.tid = 9;
  s.linked_child = b1.child.Encode();
  node.spanning = {s};

  const Rect mbr = node.ComputeMbr();
  EXPECT_EQ(mbr, Rect(0, 30, 0, 20));
}

TEST(NodeTest, FindBranch) {
  Node node;
  node.level = 1;
  for (uint32_t i = 0; i < 4; ++i) {
    BranchEntry b;
    b.rect = Rect(i, i + 1, 0, 1);
    b.child.block = 10 + i;
    node.branches.push_back(b);
  }
  storage::PageId present;
  present.block = 12;
  EXPECT_EQ(node.FindBranch(present), 2);
  storage::PageId absent;
  absent.block = 99;
  EXPECT_EQ(node.FindBranch(absent), -1);
}

TEST(NodeTest, EntryCountByKind) {
  Node leaf;
  leaf.level = 0;
  leaf.records.resize(3);
  EXPECT_EQ(leaf.entry_count(), 3u);

  Node inner;
  inner.level = 1;
  inner.branches.resize(4);
  inner.spanning.resize(2);
  EXPECT_EQ(inner.entry_count(), 6u);
  EXPECT_EQ(inner.SerializedBytes(), 8u + 4 * 40 + 2 * 48);
}

}  // namespace
}  // namespace segidx::rtree
