// Concurrency suite: the latch-coupled write path, the phase gate, group
// commit, and snapshot-consistent batches under real thread interleaving.
// Labeled `concurrency` in ctest; CI additionally runs every test here
// under ThreadSanitizer (names are prefixed "Concurrent" so the TSan job's
// -R filter picks them up). Structural acceptance after every multi-writer
// run: the StructureChecker walk is clean and query results match the
// brute-force oracle.

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/interval_index.h"
#include "gtest/gtest.h"
#include "oracle/naive_oracle.h"
#include "rtree/latch.h"
#include "storage/block_device.h"

namespace segidx {
namespace {

using core::IndexKind;
using core::IndexOptions;
using core::IntervalIndex;
using rtree::NodeLatchTable;
using rtree::PhaseGate;

// --- Latch primitives -------------------------------------------------------

TEST(ConcurrentPhaseGateTest, ModesNeverOverlap) {
  PhaseGate gate;
  std::atomic<int> active[3] = {{0}, {0}, {0}};
  std::atomic<bool> violation{false};
  std::atomic<int> exclusive_entries{0};

  auto worker = [&](PhaseGate::Mode mode, int rounds) {
    const int m = static_cast<int>(mode);
    for (int i = 0; i < rounds; ++i) {
      PhaseGate::Scope scope(&gate, mode);
      active[m].fetch_add(1);
      // No thread of another mode may be inside simultaneously.
      for (int other = 0; other < 3; ++other) {
        if (other != m && active[other].load() != 0) violation.store(true);
      }
      if (mode == PhaseGate::Mode::kExclusive) {
        exclusive_entries.fetch_add(1);
        if (active[m].load() != 1) violation.store(true);
      }
      active[m].fetch_sub(1);
    }
  };

  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back(worker, PhaseGate::Mode::kRead, 400);
    threads.emplace_back(worker, PhaseGate::Mode::kWrite, 400);
  }
  threads.emplace_back(worker, PhaseGate::Mode::kExclusive, 100);
  for (std::thread& t : threads) t.join();

  EXPECT_FALSE(violation.load());
  EXPECT_EQ(exclusive_entries.load(), 100);
}

TEST(ConcurrentPhaseGateTest, SharedModeAdmitsPeersAsABatch) {
  // Two writers entering while a reader holds the gate must both be
  // admitted when the turn rotates to writes — shared modes may not
  // degrade to one-at-a-time just because other modes are queued.
  PhaseGate gate;
  std::atomic<int> writers_inside{0};
  std::atomic<int> peak{0};
  std::atomic<bool> readers_stop{false};

  std::thread reader([&] {
    while (!readers_stop.load()) {
      PhaseGate::Scope scope(&gate, PhaseGate::Mode::kRead);
    }
  });

  std::vector<std::thread> writers;
  for (int i = 0; i < 4; ++i) {
    writers.emplace_back([&] {
      for (int r = 0; r < 200; ++r) {
        PhaseGate::Scope scope(&gate, PhaseGate::Mode::kWrite);
        const int inside = writers_inside.fetch_add(1) + 1;
        int expected = peak.load();
        while (inside > expected &&
               !peak.compare_exchange_weak(expected, inside)) {
        }
        std::this_thread::yield();
        writers_inside.fetch_sub(1);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  readers_stop.store(true);
  reader.join();

  // With 4 writers looping against one reader, batch admission should let
  // at least two writers overlap at some point.
  EXPECT_GE(peak.load(), 2);
}

TEST(ConcurrentNodeLatchTest, SameBlockExcludesDifferentBlocksDoNot) {
  // Node latches are only legal inside a write (or exclusive) phase; the
  // lockdep build enforces that, so the test holds one like real callers.
  PhaseGate gate;
  NodeLatchTable table;
  uint64_t counter = 0;  // Protected by the block-7 latch only.
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      PhaseGate::Scope scope(&gate, PhaseGate::Mode::kWrite);
      for (int r = 0; r < 2000; ++r) {
        NodeLatchTable::Guard guard =
            table.Acquire(7, NodeLatchTable::LatchOrigin::Standalone());
        ++counter;  // TSan would flag this if the latch failed to exclude.
      }
    });
  }
  // A thread on a different block must not deadlock against the others.
  threads.emplace_back([&] {
    PhaseGate::Scope scope(&gate, PhaseGate::Mode::kWrite);
    for (int r = 0; r < 2000; ++r) {
      NodeLatchTable::Guard guard =
          table.Acquire(8, NodeLatchTable::LatchOrigin::Standalone());
    }
  });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, 8000u);
}

// --- Shared helpers ---------------------------------------------------------

// Uniform interval records over the workload domain, tids [first, first+n).
std::vector<std::pair<Rect, TupleId>> MakeRecords(uint64_t first, size_t n,
                                                  uint64_t seed,
                                                  double max_len = 200.0) {
  Rng rng(seed);
  std::vector<std::pair<Rect, TupleId>> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double s = rng.Uniform(0.0, 100000.0);
    records.emplace_back(
        Rect(Interval(s, s + rng.Uniform(1.0, max_len)),
             Interval::Point(rng.Uniform(0.0, 100000.0))),
        first + i);
  }
  return records;
}

std::vector<Rect> MakeQueries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Rect> queries;
  queries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double x = rng.Uniform(0.0, 95000.0);
    const double y = rng.Uniform(0.0, 95000.0);
    queries.emplace_back(x, x + 5000.0, y, y + 5000.0);
  }
  return queries;
}

// Structural cleanliness + oracle equality over a query set.
void ExpectMatchesOracle(IntervalIndex* index,
                         const oracle::NaiveOracle& oracle,
                         const std::vector<Rect>& queries) {
  auto report = index->CheckStructure();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok()) << report->ToString();
  for (const Rect& q : queries) {
    std::vector<TupleId> got;
    ASSERT_TRUE(index->SearchTuples(q, &got).ok());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, oracle.Search(q));
  }
}

// --- Concurrent write path --------------------------------------------------

class ConcurrentWriteTest : public ::testing::TestWithParam<IndexKind> {};

TEST_P(ConcurrentWriteTest, ParallelWritersMatchOracle) {
  constexpr int kWriters = 4;
  constexpr size_t kPerWriter = 1500;
  auto index = IntervalIndex::CreateInMemory(GetParam(), IndexOptions{})
                   .value();

  std::vector<std::vector<std::pair<Rect, TupleId>>> partitions;
  oracle::NaiveOracle oracle;
  for (int w = 0; w < kWriters; ++w) {
    // SR-Trees place long records as spanning entries; give two writers
    // long-record partitions so promotion runs concurrently with point-ish
    // inserts from the others.
    const double max_len = (w % 2 == 0) ? 200.0 : 30000.0;
    partitions.push_back(MakeRecords(1 + w * kPerWriter, kPerWriter,
                                     /*seed=*/100 + w, max_len));
    for (const auto& [rect, tid] : partitions.back()) {
      oracle.Insert(rect, tid);
    }
  }

  std::vector<std::thread> writers;
  std::atomic<bool> failed{false};
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (const auto& [rect, tid] : partitions[w]) {
        if (!index->Insert(rect, tid).ok()) {
          failed.store(true);
          return;
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  ASSERT_FALSE(failed.load());

  EXPECT_EQ(index->size(), kWriters * kPerWriter);
  ExpectMatchesOracle(index.get(), oracle, MakeQueries(30, /*seed=*/7));
}

INSTANTIATE_TEST_SUITE_P(Kinds, ConcurrentWriteTest,
                         ::testing::Values(IndexKind::kRTree,
                                           IndexKind::kSRTree));

TEST(ConcurrentMixedTest, InsertDeleteSearchUnderLoad) {
  constexpr int kWriters = 3;
  constexpr size_t kPerWriter = 1000;
  auto index =
      IntervalIndex::CreateInMemory(IndexKind::kRTree, IndexOptions{})
          .value();

  // Preload one partition per writer; each writer then deletes its own
  // preloaded records while inserting a fresh partition, so deletes race
  // inserts (and each other) without double-deleting.
  std::vector<std::vector<std::pair<Rect, TupleId>>> preloaded;
  std::vector<std::vector<std::pair<Rect, TupleId>>> fresh;
  oracle::NaiveOracle oracle;
  for (int w = 0; w < kWriters; ++w) {
    preloaded.push_back(
        MakeRecords(1 + w * kPerWriter, kPerWriter, /*seed=*/200 + w));
    fresh.push_back(MakeRecords(100000 + w * kPerWriter, kPerWriter,
                                /*seed=*/300 + w));
    for (const auto& [rect, tid] : preloaded.back()) {
      ASSERT_TRUE(index->Insert(rect, tid).ok());
    }
    for (const auto& [rect, tid] : fresh.back()) oracle.Insert(rect, tid);
  }

  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (size_t i = 0; i < kPerWriter; ++i) {
        const auto& [ir, it] = fresh[w][i];
        const auto& [dr, dt] = preloaded[w][i];
        if (!index->Insert(ir, it).ok() || !index->Delete(dr, dt).ok()) {
          failed.store(true);
          return;
        }
      }
    });
  }
  const std::vector<Rect> queries = MakeQueries(16, /*seed=*/11);
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      size_t qi = static_cast<size_t>(r);
      std::vector<rtree::SearchHit> hits;
      while (!stop.load(std::memory_order_relaxed)) {
        hits.clear();
        if (!index->Search(queries[qi++ % queries.size()], &hits).ok()) {
          failed.store(true);
          return;
        }
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true);
  for (size_t i = kWriters; i < threads.size(); ++i) threads[i].join();
  ASSERT_FALSE(failed.load());

  EXPECT_EQ(index->size(), kWriters * kPerWriter);
  ExpectMatchesOracle(index.get(), oracle, queries);
}

TEST(ConcurrentSearchBatchTest, BatchIsOneSnapshotWhileWritersRun) {
  auto index =
      IntervalIndex::CreateInMemory(IndexKind::kRTree, IndexOptions{})
          .value();
  const auto initial = MakeRecords(1, 2000, /*seed=*/5);
  for (const auto& [rect, tid] : initial) {
    ASSERT_TRUE(index->Insert(rect, tid).ok());
  }

  // Duplicate every query inside one batch: the batch holds the read
  // phase, so both copies must see the identical snapshot even though a
  // writer is racing more inserts between batches.
  std::atomic<bool> stop{false};
  std::atomic<bool> writer_failed{false};
  std::thread writer([&] {
    const auto extra = MakeRecords(10000, 4000, /*seed=*/6);
    for (const auto& [rect, tid] : extra) {
      if (stop.load(std::memory_order_relaxed)) return;
      if (!index->Insert(rect, tid).ok()) {
        writer_failed.store(true);
        return;
      }
    }
  });

  const std::vector<Rect> base = MakeQueries(8, /*seed=*/13);
  for (int round = 0; round < 20; ++round) {
    std::vector<Rect> doubled;
    for (const Rect& q : base) {
      doubled.push_back(q);
      doubled.push_back(q);
    }
    std::vector<exec::BatchResult> results;
    ASSERT_TRUE(index->SearchBatch(doubled, &results, /*num_threads=*/4)
                    .ok());
    for (size_t i = 0; i < doubled.size(); i += 2) {
      ASSERT_EQ(results[i].hits.size(), results[i + 1].hits.size())
          << "round " << round << " query " << i / 2
          << ": batch saw a mid-batch mutation";
      for (size_t h = 0; h < results[i].hits.size(); ++h) {
        EXPECT_EQ(results[i].hits[h].tid, results[i + 1].hits[h].tid);
      }
    }
  }
  stop.store(true);
  writer.join();
  EXPECT_FALSE(writer_failed.load());
}

// --- Group commit ----------------------------------------------------------

TEST(ConcurrentCommitTest, AcknowledgedCommitsAreDurable) {
  auto device = std::make_unique<storage::MemoryBlockDevice>();
  storage::MemoryBlockDevice* raw = device.get();
  auto index = IntervalIndex::CreateWithDevice(IndexKind::kRTree,
                                               std::move(device),
                                               IndexOptions{})
                   .value();

  constexpr int kWriters = 4;
  constexpr size_t kPerWriter = 400;
  std::vector<std::vector<std::pair<Rect, TupleId>>> partitions;
  for (int w = 0; w < kWriters; ++w) {
    partitions.push_back(
        MakeRecords(1 + w * kPerWriter, kPerWriter, /*seed=*/400 + w));
  }
  std::vector<std::thread> writers;
  std::atomic<bool> failed{false};
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      size_t done = 0;
      for (const auto& [rect, tid] : partitions[w]) {
        if (!index->Insert(rect, tid).ok()) {
          failed.store(true);
          return;
        }
        // Commit on a cadence; concurrent commits coalesce into batches.
        if (++done % 100 == 0 && !index->Commit().ok()) {
          failed.store(true);
          return;
        }
      }
      if (!index->Commit().ok()) failed.store(true);
    });
  }
  for (std::thread& t : writers) t.join();
  ASSERT_FALSE(failed.load());

  const storage::StorageStats& stats = index->storage_stats();
  EXPECT_GE(stats.commit_requests, static_cast<uint64_t>(kWriters * 4));
  EXPECT_LE(stats.commit_batches, stats.commit_requests);

  // Every commit was acknowledged before the writers joined, so a reopen
  // from the raw image — no Close(), simulating a process kill after the
  // last acknowledgment — must see every record.
  auto reopened = IntervalIndex::OpenFromDevice(
      std::make_unique<storage::MemoryBlockDevice>(raw->Snapshot()),
      IndexOptions{});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->size(), kWriters * kPerWriter);
  auto report = (*reopened)->CheckStructure();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->ToString();
}

}  // namespace
}  // namespace segidx
