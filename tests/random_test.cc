#include "common/random.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace segidx {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBoundsAndMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Uniform(10, 20);
    ASSERT_GE(v, 10);
    ASSERT_LE(v, 20);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 15.0, 0.05);
}

TEST(RngTest, ExponentialMeanMatchesBeta) {
  Rng rng(13);
  const double beta = 2000;
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(beta);
  }
  // Standard error of the mean is beta/sqrt(n) ≈ 4.5; allow 5 sigma.
  EXPECT_NEAR(sum / n, beta, 25.0);
}

TEST(RngTest, TruncatedExponentialStaysInRange) {
  Rng rng(17);
  const double beta = 7000;
  const double cap = 10000;
  for (int i = 0; i < 50000; ++i) {
    const double v = rng.Exponential(beta, cap);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, cap);
  }
}

TEST(RngTest, ExponentialIsSkewed) {
  // The defining property the paper relies on: many short values, few long
  // ones. The median of Exp(beta) is beta * ln 2 < mean.
  Rng rng(19);
  const double beta = 2000;
  int below_mean = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Exponential(beta) < beta) ++below_mean;
  }
  EXPECT_NEAR(static_cast<double>(below_mean) / n, 1 - std::exp(-1.0), 0.01);
}

TEST(RngTest, UniformIntCoversRangeUniformly) {
  Rng rng(23);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const int64_t v = rng.UniformInt(0, 9);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 9);
    ++counts[static_cast<size_t>(v)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, 500);
  }
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.UniformInt(5, 5), 5);
  }
}

}  // namespace
}  // namespace segidx
