// Death tests for the runtime lock-order validator (src/check/lock_order).
//
// Each test provokes exactly one contract violation and expects the
// validator to abort with its diagnostic. In a build without
// SEGIDX_LOCKDEP the hooks are no-op inlines, so every test is skipped —
// which doubles as the check that the annotations and hooks compile away
// cleanly (this file builds in the plain GCC tier-1 configuration too).

#include <gtest/gtest.h>

#include "check/lock_order.h"
#include "common/mutex.h"
#include "rtree/latch.h"

namespace segidx {
namespace {

using check::LockClass;
using check::TrackedMutexLock;
using rtree::NodeLatchTable;
using rtree::PhaseGate;
using LatchOrigin = NodeLatchTable::LatchOrigin;

#if defined(SEGIDX_LOCKDEP)

class LockdepDeathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Death tests fork; reset the learned acquired-before graph in both
    // parent and child so tests cannot poison one another's edges.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    check::LockdepResetForTesting();
  }
};

TEST_F(LockdepDeathTest, NodeLatchOutsidePhaseAborts) {
  NodeLatchTable table;
  EXPECT_DEATH(
      {
        check::LockdepResetForTesting();
        NodeLatchTable::Guard g = table.Acquire(7, LatchOrigin::Standalone());
      },
      "outside a write/exclusive phase");
}

TEST_F(LockdepDeathTest, NodeLatchInReadPhaseAborts) {
  PhaseGate gate;
  NodeLatchTable table;
  EXPECT_DEATH(
      {
        check::LockdepResetForTesting();
        PhaseGate::Scope scope(&gate, PhaseGate::Mode::kRead);
        NodeLatchTable::Guard g = table.Acquire(7, LatchOrigin::Standalone());
      },
      "outside a write/exclusive phase");
}

TEST_F(LockdepDeathTest, CrabbingChildWithoutParentAborts) {
  PhaseGate gate;
  NodeLatchTable table;
  EXPECT_DEATH(
      {
        check::LockdepResetForTesting();
        PhaseGate::Scope scope(&gate, PhaseGate::Mode::kWrite);
        // Claims to crab down from node 3, but the latch on 3 is not held.
        NodeLatchTable::Guard g = table.Acquire(5, LatchOrigin::Child(3));
      },
      "crabbing violation");
}

TEST_F(LockdepDeathTest, StandaloneWhileLatchesHeldAborts) {
  PhaseGate gate;
  NodeLatchTable table;
  EXPECT_DEATH(
      {
        check::LockdepResetForTesting();
        PhaseGate::Scope scope(&gate, PhaseGate::Mode::kWrite);
        NodeLatchTable::Guard root =
            table.Acquire(1, LatchOrigin::Standalone());
        // A second "root protocol" acquisition while a latch is held is a
        // descent that forgot to crab.
        NodeLatchTable::Guard other =
            table.Acquire(9, LatchOrigin::Standalone());
      },
      "standalone latch acquisition");
}

TEST_F(LockdepDeathTest, GateReentryAborts) {
  PhaseGate gate;
  EXPECT_DEATH(
      {
        check::LockdepResetForTesting();
        PhaseGate::Scope outer(&gate, PhaseGate::Mode::kRead);
        PhaseGate::Scope inner(&gate, PhaseGate::Mode::kRead);
      },
      "re-entering a PhaseGate");
}

TEST_F(LockdepDeathTest, GateEntryWhileHoldingNodeLatchAborts) {
  PhaseGate gate;
  PhaseGate other_gate;
  NodeLatchTable table;
  EXPECT_DEATH(
      {
        check::LockdepResetForTesting();
        PhaseGate::Scope scope(&gate, PhaseGate::Mode::kWrite);
        NodeLatchTable::Guard g = table.Acquire(4, LatchOrigin::Standalone());
        // The gate sits above all node latches; entering one (any one)
        // while a latch is held inverts the hierarchy.
        PhaseGate::Scope nested(&other_gate, PhaseGate::Mode::kWrite);
      },
      "while holding a node latch");
}

TEST_F(LockdepDeathTest, TwoPagerPartitionLatchesAbort) {
  common::Mutex shard_a;
  common::Mutex shard_b;
  EXPECT_DEATH(
      {
        check::LockdepResetForTesting();
        TrackedMutexLock first(&shard_a, LockClass::kPagerPartition);
        TrackedMutexLock second(&shard_b, LockClass::kPagerPartition);
      },
      "two pager partition latches");
}

TEST_F(LockdepDeathTest, BlockingUnderMapMutexAborts) {
  common::Mutex map_mu;
  common::Mutex other;
  EXPECT_DEATH(
      {
        check::LockdepResetForTesting();
        TrackedMutexLock map(&map_mu, LockClass::kLatchMap);
        TrackedMutexLock blocked(&other, LockClass::kPagerAlloc);
      },
      "map_mu_ is a leaf lock");
}

TEST_F(LockdepDeathTest, LockOrderInversionAbortsWithBothStacks) {
  common::Mutex alloc_mu;
  common::Mutex quarantine_mu;
  EXPECT_DEATH(
      {
        check::LockdepResetForTesting();
        {
          // Teach the validator alloc -> quarantine (the real Pager::Free
          // nesting).
          TrackedMutexLock a(&alloc_mu, LockClass::kPagerAlloc);
          TrackedMutexLock q(&quarantine_mu, LockClass::kPagerQuarantine);
        }
        // The reverse order closes a cycle.
        TrackedMutexLock q(&quarantine_mu, LockClass::kPagerQuarantine);
        TrackedMutexLock a(&alloc_mu, LockClass::kPagerAlloc);
      },
      "lock-order cycle");
}

TEST_F(LockdepDeathTest, RecursiveMutexAcquisitionAborts) {
  common::Mutex mu;
  EXPECT_DEATH(
      {
        check::LockdepResetForTesting();
        TrackedMutexLock outer(&mu, LockClass::kTreeMeta);
        TrackedMutexLock inner(&mu, LockClass::kTreeMeta);
      },
      "recursive acquisition");
}

// The positive case: the contract's legal sequences run clean under the
// validator (no abort). Mirrors a real descent — root protocol, then
// hand-over-hand crabbing, releasing the parent after latching the child.
TEST_F(LockdepDeathTest, LegalCrabbingDescentRunsClean) {
  PhaseGate gate;
  NodeLatchTable table;
  {
    PhaseGate::Scope scope(&gate, PhaseGate::Mode::kWrite);
    NodeLatchTable::Guard root = table.Acquire(1, LatchOrigin::Standalone());
    NodeLatchTable::Guard child = table.Acquire(2, LatchOrigin::Child(1));
    root = NodeLatchTable::Guard();  // Crab: drop the parent.
    NodeLatchTable::Guard grandchild =
        table.Acquire(3, LatchOrigin::Child(2));
  }
  {
    // Exclusive maintenance walks (CoalesceSparseLeaves) may latch too.
    PhaseGate::Scope scope(&gate, PhaseGate::Mode::kExclusive);
    NodeLatchTable::Guard g = table.Acquire(5, LatchOrigin::Standalone());
  }
  SUCCEED();
}

TEST_F(LockdepDeathTest, LegalPartitionThenAllocNestingRunsClean) {
  common::Mutex shard;
  common::Mutex alloc_mu;
  {
    // Pager::SpillFrame nests part.mu -> alloc_mu_; one direction only.
    TrackedMutexLock part(&shard, LockClass::kPagerPartition);
    TrackedMutexLock alloc(&alloc_mu, LockClass::kPagerAlloc);
  }
  SUCCEED();
}

#else  // !SEGIDX_LOCKDEP

TEST(LockdepDisabledTest, HooksCompileToNoOps) {
  // With the validator compiled out, violations are not detected — this
  // exercises the no-op inline hooks (and, on GCC, the no-op annotation
  // macros) so the plain build proves they cost nothing and break nothing.
  check::LockdepOnLock(LockClass::kTreeMeta, nullptr);
  check::LockdepOnUnlock(LockClass::kTreeMeta, nullptr);
  common::Mutex mu;
  {
    TrackedMutexLock lock(&mu, LockClass::kTreeMeta);
  }
  GTEST_SKIP() << "rebuild with -DSEGIDX_LOCKDEP=ON to run the validator "
                  "death tests";
}

#endif  // SEGIDX_LOCKDEP

}  // namespace
}  // namespace segidx
