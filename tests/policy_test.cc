// Tests for the spanning-overflow policies (rtree::SpanningOverflowPolicy)
// and the structure-introspection API.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "oracle/naive_oracle.h"
#include "srtree/srtree.h"
#include "storage/block_device.h"
#include "tests/test_util.h"
#include "workload/datasets.h"

namespace segidx::srtree {
namespace {

using oracle::NaiveOracle;
using rtree::SearchHit;
using rtree::SpanningOverflowPolicy;
using rtree::TreeOptions;
using test_util::MakeMemoryPager;
using test_util::Tids;

struct PolicyCase {
  SpanningOverflowPolicy policy;
  workload::DatasetKind dataset;
  uint64_t seed;
};

const char* PolicyName(SpanningOverflowPolicy policy) {
  switch (policy) {
    case SpanningOverflowPolicy::kDescend:
      return "Descend";
    case SpanningOverflowPolicy::kSplit:
      return "Split";
    case SpanningOverflowPolicy::kEvictSmallest:
      return "EvictSmallest";
  }
  return "?";
}

void PrintTo(const PolicyCase& c, std::ostream* os) {
  *os << PolicyName(c.policy) << "_"
      << workload::DatasetKindName(c.dataset) << "_s" << c.seed;
}

class OverflowPolicyTest : public testing::TestWithParam<PolicyCase> {};

// Search results must equal the oracle under every overflow policy, on
// workloads heavy enough to hit the quota (long intervals / big rects).
TEST_P(OverflowPolicyTest, MatchesOracleUnderQuotaPressure) {
  const PolicyCase& c = GetParam();
  auto pager = MakeMemoryPager();
  TreeOptions options;
  options.spanning_overflow_policy = c.policy;
  auto tree = SRTree::Create(pager.get(), options).value();
  NaiveOracle oracle;

  Rng rng(c.seed);
  TupleId tid = 0;
  // Dense points keep leaf regions small so long records overwhelm the
  // spanning quota quickly.
  for (int round = 0; round < 40; ++round) {
    for (int i = 0; i < 150; ++i) {
      const Coord x = rng.Uniform(0, 100000);
      const Coord y = rng.Uniform(0, 100000);
      const Rect r = Rect::Point(x, y);
      ASSERT_TRUE(tree->Insert(r, tid).ok());
      oracle.Insert(r, tid);
      ++tid;
    }
    for (int i = 0; i < 25; ++i) {
      Rect r;
      if (c.dataset == workload::DatasetKind::kI3) {
        const Coord lo = rng.Uniform(0, 60000);
        r = Rect::Segment1D(lo, lo + rng.Exponential(25000, 40000),
                            rng.Uniform(0, 100000));
      } else {
        const Coord x = rng.Uniform(0, 60000);
        const Coord y = rng.Uniform(0, 60000);
        r = Rect(x, x + rng.Exponential(15000, 40000), y,
                 y + rng.Exponential(15000, 40000));
      }
      ASSERT_TRUE(tree->Insert(r, tid).ok());
      oracle.Insert(r, tid);
      ++tid;
    }
  }
  EXPECT_GT(tree->stats().spanning_placed, 0u);
  ASSERT_TRUE(tree->CheckInvariants().ok());

  for (double qar : {0.001, 1.0, 1000.0}) {
    for (const Rect& query :
         workload::GenerateQueries(qar, 1e6, 25, c.seed + 5)) {
      std::vector<SearchHit> hits;
      ASSERT_TRUE(tree->Search(query, &hits).ok());
      EXPECT_EQ(Tids(hits), oracle.Search(query));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, OverflowPolicyTest,
    testing::Values(
        PolicyCase{SpanningOverflowPolicy::kDescend,
                   workload::DatasetKind::kI3, 1},
        PolicyCase{SpanningOverflowPolicy::kSplit,
                   workload::DatasetKind::kI3, 2},
        PolicyCase{SpanningOverflowPolicy::kEvictSmallest,
                   workload::DatasetKind::kI3, 3},
        PolicyCase{SpanningOverflowPolicy::kDescend,
                   workload::DatasetKind::kR2, 4},
        PolicyCase{SpanningOverflowPolicy::kSplit,
                   workload::DatasetKind::kR2, 5},
        PolicyCase{SpanningOverflowPolicy::kEvictSmallest,
                   workload::DatasetKind::kR2, 6}),
    testing::PrintToStringParamName());

// Builds an SR-Tree under quota pressure with the given policy and
// returns it.
std::unique_ptr<SRTree> BuildPressured(storage::Pager* pager,
                                       SpanningOverflowPolicy policy) {
  TreeOptions options;
  options.spanning_overflow_policy = policy;
  auto tree = SRTree::Create(pager, options).value();
  Rng rng(77);
  TupleId tid = 0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 120; ++i) {
      (void)tree->Insert(
          Rect::Point(rng.Uniform(0, 100000), rng.Uniform(0, 100000)),
          tid++);
    }
    for (int i = 0; i < 30; ++i) {
      const Coord lo = rng.Uniform(0, 40000);
      (void)tree->Insert(
          Rect::Segment1D(lo, lo + rng.Uniform(30000, 60000),
                          rng.Uniform(0, 100000)),
          tid++);
    }
  }
  return tree;
}

TEST(OverflowPolicyTest, EvictSmallestRecordsEvictions) {
  auto pager = MakeMemoryPager();
  auto tree =
      BuildPressured(pager.get(), SpanningOverflowPolicy::kEvictSmallest);
  EXPECT_GT(tree->stats().spanning_evictions, 0u);
  ASSERT_TRUE(tree->CheckInvariants().ok());
}

TEST(OverflowPolicyTest, DescendNeverEvicts) {
  auto pager = MakeMemoryPager();
  auto tree = BuildPressured(pager.get(), SpanningOverflowPolicy::kDescend);
  EXPECT_EQ(tree->stats().spanning_evictions, 0u);
  ASSERT_TRUE(tree->CheckInvariants().ok());
}

TEST(OverflowPolicyTest, SplitGrowsSpanningCapacity) {
  // Under kSplit nothing bounds the spanning population, so it must exceed
  // what kDescend can hold.
  auto pager_a = MakeMemoryPager();
  auto descend =
      BuildPressured(pager_a.get(), SpanningOverflowPolicy::kDescend);
  auto pager_b = MakeMemoryPager();
  auto split = BuildPressured(pager_b.get(), SpanningOverflowPolicy::kSplit);
  auto count_spanning = [](rtree::RTree* tree) {
    uint64_t total = 0;
    auto stats = tree->CollectLevelStats().value();
    for (const auto& level : stats) total += level.spanning_entries;
    return total;
  };
  EXPECT_GT(count_spanning(split.get()), count_spanning(descend.get()));
  ASSERT_TRUE(split->CheckInvariants().ok());
}

TEST(OverflowPolicyTest, PolicyPersistsAcrossReopen) {
  const std::string path = testing::TempDir() + "/policy_persist";
  std::remove(path.c_str());
  storage::PagerOptions pager_options;
  {
    auto pager = storage::Pager::Create(
                     storage::FileBlockDevice::Open(path, true).value(),
                     pager_options)
                     .value();
    TreeOptions options;
    options.spanning_overflow_policy = SpanningOverflowPolicy::kSplit;
    auto tree = SRTree::Create(pager.get(), options).value();
    ASSERT_TRUE(tree->Insert(Rect(0, 1, 0, 1), 1).ok());
    ASSERT_TRUE(tree->SaveMeta().ok());
    ASSERT_TRUE(pager->Checkpoint().ok());
  }
  auto pager = storage::Pager::Open(
                   storage::FileBlockDevice::Open(path, false).value(),
                   pager_options)
                   .value();
  auto tree = SRTree::Open(pager.get()).value();
  EXPECT_EQ(tree->options().spanning_overflow_policy,
            SpanningOverflowPolicy::kSplit);
}

TEST(LevelStatsTest, AgreesWithNodeCounts) {
  auto pager = MakeMemoryPager();
  auto tree = BuildPressured(pager.get(),
                             SpanningOverflowPolicy::kEvictSmallest);
  const auto per_level = tree->CountNodesPerLevel().value();
  const auto stats = tree->CollectLevelStats().value();
  ASSERT_EQ(stats.size(), per_level.size());
  uint64_t branch_sum = 0;
  for (size_t level = 0; level < stats.size(); ++level) {
    EXPECT_EQ(stats[level].nodes, per_level[level]);
    EXPECT_GT(stats[level].avg_region_width, 0);
    EXPECT_LE(stats[level].avg_region_width,
              stats[level].max_region_width);
    if (level > 0) {
      // Branch entries at level k reference exactly the nodes at k-1.
      EXPECT_EQ(stats[level].branch_entries, per_level[level - 1]);
    }
    branch_sum += stats[level].branch_entries;
  }
  EXPECT_GT(branch_sum, 0u);
  // Every stored piece is either a leaf record or a spanning record: one
  // per logical record plus one per cut remnant (demotions and evictions
  // move pieces without changing the count).
  uint64_t spanning_total = 0;
  for (const auto& level : stats) spanning_total += level.spanning_entries;
  EXPECT_EQ(stats[0].branch_entries + spanning_total,
            tree->size() + tree->stats().remnants_inserted);
}

}  // namespace
}  // namespace segidx::srtree
