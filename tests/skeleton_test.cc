#include "skeleton/skeleton_index.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "oracle/naive_oracle.h"
#include "skeleton/spec_builder.h"
#include "srtree/srtree.h"
#include "tests/test_util.h"
#include "workload/datasets.h"

namespace segidx::skeleton {
namespace {

using oracle::NaiveOracle;
using rtree::RTree;
using rtree::SearchHit;
using rtree::TreeOptions;
using srtree::SRTree;
using test_util::MakeMemoryPager;
using test_util::Tids;

SkeletonOptions SmallOptions(uint64_t expected, uint64_t sample) {
  SkeletonOptions options;
  options.expected_tuples = expected;
  options.prediction_sample = sample;
  options.coalesce_interval = 500;
  options.coalesce_candidates = 10;
  return options;
}

TEST(PreBuildTest, MaterializesTheSpecExactly) {
  auto pager = MakeMemoryPager();
  auto tree = RTree::Create(pager.get(), TreeOptions()).value();

  rtree::SkeletonSpec spec;
  // 4x4 leaves, 2x2 level-1 nodes, implicit root with 4 branches.
  spec.levels.push_back(rtree::SkeletonLevel{
      {0, 25, 50, 75, 100}, {0, 25, 50, 75, 100}});
  spec.levels.push_back(rtree::SkeletonLevel{{0, 50, 100}, {0, 50, 100}});
  ASSERT_TRUE(tree->PreBuild(spec).ok());

  EXPECT_EQ(tree->height(), 3);
  auto counts = tree->CountNodesPerLevel();
  ASSERT_TRUE(counts.ok());
  EXPECT_EQ((*counts)[0], 16u);
  EXPECT_EQ((*counts)[1], 4u);
  EXPECT_EQ((*counts)[2], 1u);
  ASSERT_TRUE(tree->CheckInvariants().ok());

  // Searches over the empty skeleton find nothing but are well-formed.
  std::vector<SearchHit> hits;
  ASSERT_TRUE(tree->Search(Rect(0, 100, 0, 100), &hits).ok());
  EXPECT_TRUE(hits.empty());
}

TEST(PreBuildTest, RequiresEmptyTree) {
  auto pager = MakeMemoryPager();
  auto tree = RTree::Create(pager.get(), TreeOptions()).value();
  ASSERT_TRUE(tree->Insert(Rect(0, 1, 0, 1), 1).ok());
  rtree::SkeletonSpec spec;
  spec.levels.push_back(rtree::SkeletonLevel{{0, 100}, {0, 100}});
  EXPECT_EQ(tree->PreBuild(spec).code(), StatusCode::kFailedPrecondition);
}

TEST(PreBuildTest, RejectsNonNestedBounds) {
  auto pager = MakeMemoryPager();
  auto tree = RTree::Create(pager.get(), TreeOptions()).value();
  rtree::SkeletonSpec spec;
  spec.levels.push_back(rtree::SkeletonLevel{{0, 30, 100}, {0, 30, 100}});
  // 40 is not a leaf boundary: parent cells cannot tile the children.
  spec.levels.push_back(rtree::SkeletonLevel{{0, 40, 100}, {0, 100}});
  EXPECT_FALSE(tree->PreBuild(spec).ok());
}

TEST(PreBuildTest, InsertIntoSkeletonLandsInMatchingCell) {
  auto pager = MakeMemoryPager();
  auto tree = RTree::Create(pager.get(), TreeOptions()).value();
  rtree::SkeletonSpec spec;
  spec.levels.push_back(rtree::SkeletonLevel{
      {0, 25, 50, 75, 100}, {0, 25, 50, 75, 100}});
  ASSERT_TRUE(tree->PreBuild(spec).ok());

  ASSERT_TRUE(tree->Insert(Rect(10, 12, 10, 12), 1).ok());
  ASSERT_TRUE(tree->Insert(Rect(80, 82, 80, 82), 2).ok());
  ASSERT_TRUE(tree->CheckInvariants().ok());

  // A query confined to one cell must not touch distant cells.
  std::vector<SearchHit> hits;
  uint64_t accesses = 0;
  ASSERT_TRUE(tree->Search(Rect(5, 15, 5, 15), &hits, &accesses).ok());
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].tid, 1u);
  EXPECT_LE(accesses, 5u);  // Root plus the few touched cells.
}

TEST(CoalesceTest, MergesAdjacentSparseLeaves) {
  auto pager = MakeMemoryPager();
  auto tree = RTree::Create(pager.get(), TreeOptions()).value();
  rtree::SkeletonSpec spec;
  // 6x6 empty leaves under a single root (36 < the 51-branch root quota).
  std::vector<Coord> bounds;
  for (int i = 0; i <= 6; ++i) bounds.push_back(i * 100.0 / 6);
  spec.levels.push_back(rtree::SkeletonLevel{bounds, bounds});
  ASSERT_TRUE(tree->PreBuild(spec).ok());

  auto before = tree->CountNodesPerLevel().value();
  EXPECT_EQ(before[0], 36u);
  const auto merged = tree->CoalesceSparseLeaves(36);
  ASSERT_TRUE(merged.ok());
  EXPECT_GT(*merged, 0);
  auto after = tree->CountNodesPerLevel().value();
  EXPECT_EQ(after[0], before[0] - static_cast<uint64_t>(*merged));
  ASSERT_TRUE(tree->CheckInvariants().ok());
}

TEST(CoalesceTest, DoesNotMergeFullLeaves) {
  auto pager = MakeMemoryPager();
  auto tree = RTree::Create(pager.get(), TreeOptions()).value();
  rtree::SkeletonSpec spec;
  spec.levels.push_back(
      rtree::SkeletonLevel{{0, 50, 100}, {0, 100}});  // Two leaves.
  ASSERT_TRUE(tree->PreBuild(spec).ok());
  // Fill both leaves beyond half capacity so a merge cannot fit.
  Rng rng(3);
  for (int i = 0; i < 40; ++i) {
    const Coord x = rng.Uniform(0, 100);
    ASSERT_TRUE(tree->Insert(Rect(x, x, 50, 50), i).ok());
  }
  const auto merged = tree->CoalesceSparseLeaves(10);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(*merged, 0);
}

TEST(CoalesceTest, PreservesSearchResults) {
  auto pager = MakeMemoryPager();
  auto tree = SRTree::Create(pager.get(), TreeOptions()).value();
  NaiveOracle oracle;
  workload::DatasetSpec spec;
  spec.kind = workload::DatasetKind::kI2;  // Skewed: leaves sparse up top.
  spec.count = 4000;
  spec.seed = 4;
  const std::vector<Rect> data = workload::GenerateDataset(spec);

  SkeletonOptions options = SmallOptions(4000, 400);
  SkeletonIndex skeleton(tree.get(), options);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(skeleton.Insert(data[i], i).ok());
    oracle.Insert(data[i], i);
  }
  ASSERT_TRUE(skeleton.built());
  EXPECT_GT(tree->stats().coalesced_nodes, 0u);
  ASSERT_TRUE(tree->CheckInvariants().ok());

  for (double qar : {0.001, 1.0, 1000.0}) {
    for (const Rect& query : workload::GenerateQueries(qar, 1e6, 30, 31)) {
      std::vector<SearchHit> hits;
      ASSERT_TRUE(skeleton.Search(query, &hits).ok());
      EXPECT_EQ(Tids(hits), oracle.Search(query));
    }
  }
}

TEST(SkeletonIndexTest, BuildsAfterPredictionSample) {
  auto pager = MakeMemoryPager();
  auto tree = RTree::Create(pager.get(), TreeOptions()).value();
  SkeletonIndex skeleton(tree.get(), SmallOptions(1000, 100));
  Rng rng(5);
  for (int i = 0; i < 99; ++i) {
    const Coord x = rng.Uniform(0, 100000);
    ASSERT_TRUE(skeleton.Insert(Rect(x, x + 10, x, x + 10), i).ok());
  }
  EXPECT_FALSE(skeleton.built());
  EXPECT_EQ(tree->size(), 0u);  // Still buffering.
  ASSERT_TRUE(
      skeleton.Insert(Rect(5, 6, 5, 6), 99).ok());  // The 100th insert.
  EXPECT_TRUE(skeleton.built());
  EXPECT_EQ(tree->size(), 100u);
  EXPECT_GT(tree->height(), 1);
}

TEST(SkeletonIndexTest, SearchWhileBufferingForcesBuild) {
  auto pager = MakeMemoryPager();
  auto tree = RTree::Create(pager.get(), TreeOptions()).value();
  SkeletonIndex skeleton(tree.get(), SmallOptions(1000, 100));
  ASSERT_TRUE(skeleton.Insert(Rect(10, 20, 10, 20), 7).ok());
  EXPECT_FALSE(skeleton.built());
  std::vector<SearchHit> hits;
  ASSERT_TRUE(skeleton.Search(Rect(0, 100, 0, 100), &hits).ok());
  EXPECT_TRUE(skeleton.built());
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].tid, 7u);
}

TEST(SkeletonIndexTest, ZeroSampleBuildsUniformSkeletonUpFront) {
  auto pager = MakeMemoryPager();
  auto tree = RTree::Create(pager.get(), TreeOptions()).value();
  SkeletonOptions options = SmallOptions(5000, 0);
  SkeletonIndex skeleton(tree.get(), options);
  ASSERT_TRUE(skeleton.Insert(Rect(1, 2, 1, 2), 0).ok());
  EXPECT_TRUE(skeleton.built());
  EXPECT_GT(tree->height(), 1);  // Pre-partitioned despite 1 record.
}

struct SkeletonOracleCase {
  workload::DatasetKind dataset;
  bool segment;  // SR-Tree vs R-Tree under the skeleton.
  uint64_t seed;
};

void PrintTo(const SkeletonOracleCase& c, std::ostream* os) {
  *os << workload::DatasetKindName(c.dataset)
      << (c.segment ? "_SRTree" : "_RTree") << "_s" << c.seed;
}

class SkeletonOracleTest
    : public testing::TestWithParam<SkeletonOracleCase> {};

TEST_P(SkeletonOracleTest, SearchMatchesNaiveOracle) {
  const SkeletonOracleCase& c = GetParam();
  auto pager = MakeMemoryPager();
  std::unique_ptr<RTree> tree;
  if (c.segment) {
    tree = SRTree::Create(pager.get(), TreeOptions()).value();
  } else {
    tree = RTree::Create(pager.get(), TreeOptions()).value();
  }
  NaiveOracle oracle;

  workload::DatasetSpec spec;
  spec.kind = c.dataset;
  spec.count = 5000;
  spec.seed = c.seed;
  const std::vector<Rect> data = workload::GenerateDataset(spec);

  SkeletonIndex skeleton(tree.get(), SmallOptions(spec.count, 500));
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(skeleton.Insert(data[i], i).ok());
    oracle.Insert(data[i], i);
  }
  ASSERT_TRUE(skeleton.built());
  ASSERT_TRUE(tree->CheckInvariants().ok());

  for (double qar : {0.0001, 0.1, 1.0, 100.0}) {
    for (const Rect& query :
         workload::GenerateQueries(qar, 1e6, 20, c.seed + 7)) {
      std::vector<SearchHit> hits;
      ASSERT_TRUE(skeleton.Search(query, &hits).ok());
      EXPECT_EQ(Tids(hits), oracle.Search(query));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, SkeletonOracleTest,
    testing::Values(
        SkeletonOracleCase{workload::DatasetKind::kI1, false, 1},
        SkeletonOracleCase{workload::DatasetKind::kI2, false, 2},
        SkeletonOracleCase{workload::DatasetKind::kI3, false, 3},
        SkeletonOracleCase{workload::DatasetKind::kI4, false, 4},
        SkeletonOracleCase{workload::DatasetKind::kR2, false, 5},
        SkeletonOracleCase{workload::DatasetKind::kI1, true, 6},
        SkeletonOracleCase{workload::DatasetKind::kI2, true, 7},
        SkeletonOracleCase{workload::DatasetKind::kI3, true, 8},
        SkeletonOracleCase{workload::DatasetKind::kI4, true, 9},
        SkeletonOracleCase{workload::DatasetKind::kR1, true, 10},
        SkeletonOracleCase{workload::DatasetKind::kR2, true, 11},
        SkeletonOracleCase{workload::DatasetKind::kRC2, true, 12}),
    testing::PrintToStringParamName());

TEST(SkeletonIndexTest, SkeletonSRTreeStoresSpanningRecordsHigh) {
  // The whole point of the Skeleton SR-Tree: long intervals span the
  // regular grid cells and land in non-leaf nodes.
  auto pager = MakeMemoryPager();
  auto tree = SRTree::Create(pager.get(), TreeOptions()).value();
  workload::DatasetSpec spec;
  spec.kind = workload::DatasetKind::kI3;  // Exponential lengths.
  spec.count = 40000;  // Enough for grid cells narrower than the mean length.
  spec.seed = 20;
  const std::vector<Rect> data = workload::GenerateDataset(spec);
  SkeletonIndex skeleton(tree.get(), SmallOptions(spec.count, 4000));
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(skeleton.Insert(data[i], i).ok());
  }
  EXPECT_GT(tree->stats().spanning_placed, 500u);
  ASSERT_TRUE(tree->CheckInvariants().ok());
}

}  // namespace
}  // namespace segidx::skeleton
