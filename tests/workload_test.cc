#include "workload/datasets.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

namespace segidx::workload {
namespace {

TEST(DatasetKindTest, NamesRoundTrip) {
  for (DatasetKind kind :
       {DatasetKind::kI1, DatasetKind::kI2, DatasetKind::kI3,
        DatasetKind::kI4, DatasetKind::kR1, DatasetKind::kR2,
        DatasetKind::kRC1, DatasetKind::kRC2}) {
    const auto parsed = ParseDatasetKind(DatasetKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_TRUE(ParseDatasetKind("i3").ok());  // Case-insensitive.
  EXPECT_FALSE(ParseDatasetKind("Z9").ok());
}

TEST(DatasetTest, Deterministic) {
  DatasetSpec spec;
  spec.kind = DatasetKind::kI4;
  spec.count = 100;
  spec.seed = 5;
  const auto a = GenerateDataset(spec);
  const auto b = GenerateDataset(spec);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  spec.seed = 6;
  const auto c = GenerateDataset(spec);
  EXPECT_FALSE(a[0] == c[0]);
}

TEST(DatasetTest, IntervalDatasetsHaveDegenerateY) {
  for (DatasetKind kind : {DatasetKind::kI1, DatasetKind::kI2,
                           DatasetKind::kI3, DatasetKind::kI4}) {
    DatasetSpec spec;
    spec.kind = kind;
    spec.count = 500;
    for (const Rect& r : GenerateDataset(spec)) {
      EXPECT_TRUE(r.y.is_point());
      EXPECT_TRUE(r.valid());
    }
  }
}

TEST(DatasetTest, RectangleDatasetsHaveExtentInBothDims) {
  DatasetSpec spec;
  spec.kind = DatasetKind::kR2;
  spec.count = 2000;
  int with_height = 0;
  for (const Rect& r : GenerateDataset(spec)) {
    EXPECT_TRUE(r.valid());
    if (r.y.length() > 0) ++with_height;
  }
  EXPECT_GT(with_height, 1900);
}

TEST(DatasetTest, UniformLengthsAreShort) {
  DatasetSpec spec;
  spec.kind = DatasetKind::kI1;
  spec.count = 5000;
  for (const Rect& r : GenerateDataset(spec)) {
    EXPECT_LE(r.x.length(), kUniformLengthMax);
    EXPECT_GE(r.x.length(), 0);
  }
}

TEST(DatasetTest, ExponentialLengthsAreSkewed) {
  DatasetSpec spec;
  spec.kind = DatasetKind::kI3;
  spec.count = 20000;
  const auto data = GenerateDataset(spec);
  double mean = 0;
  int long_ones = 0;
  for (const Rect& r : data) {
    mean += r.x.length();
    if (r.x.length() > 3 * kBetaLength) ++long_ones;
  }
  mean /= static_cast<double>(data.size());
  EXPECT_NEAR(mean, kBetaLength, 100);
  // Roughly e^-3 ≈ 5% of intervals are "long" — the paper's skew.
  EXPECT_GT(long_ones, data.size() / 40);
  EXPECT_LT(long_ones, data.size() / 10);
}

TEST(DatasetTest, ExponentialYValuesConcentrateLow) {
  DatasetSpec spec;
  spec.kind = DatasetKind::kI2;
  spec.count = 20000;
  int below_beta = 0;
  for (const Rect& r : GenerateDataset(spec)) {
    if (r.y.lo < kBetaY) ++below_beta;
  }
  EXPECT_NEAR(static_cast<double>(below_beta) / 20000, 1 - std::exp(-1.0),
              0.02);
}

TEST(DatasetTest, CentersStayInDomain) {
  for (DatasetKind kind : {DatasetKind::kI1, DatasetKind::kR2,
                           DatasetKind::kRC2}) {
    DatasetSpec spec;
    spec.kind = kind;
    spec.count = 3000;
    for (const Rect& r : GenerateDataset(spec)) {
      EXPECT_GE(r.x.center(), kDomainLo);
      EXPECT_LE(r.x.center(), kDomainHi);
      EXPECT_GE(r.y.center(), kDomainLo);
      EXPECT_LE(r.y.center(), kDomainHi);
    }
  }
}

TEST(DatasetTest, MixedEventRangeComposition) {
  DatasetSpec spec;
  spec.kind = DatasetKind::kM1;
  spec.count = 20000;
  int events = 0;
  int long_ranges = 0;
  for (const Rect& r : GenerateDataset(spec)) {
    EXPECT_TRUE(r.valid());
    EXPECT_TRUE(r.y.is_point());
    if (r.x.is_point()) ++events;
    if (r.x.length() > 5000) ++long_ranges;
  }
  EXPECT_NEAR(events, 6000, 300);       // ~30% events.
  EXPECT_GT(long_ranges, 600);          // The long-range tail exists.
  EXPECT_LT(long_ranges, 3000);
}

TEST(QueryTest, PaperSweepShape) {
  const std::vector<double>& sweep = PaperQarSweep();
  ASSERT_EQ(sweep.size(), 13u);
  EXPECT_EQ(sweep.front(), 0.0001);
  EXPECT_EQ(sweep.back(), 10000.0);
  EXPECT_TRUE(std::is_sorted(sweep.begin(), sweep.end()));
}

TEST(QueryTest, AreaAndAspectRatioAreExact) {
  for (double qar : PaperQarSweep()) {
    const auto queries = GenerateQueries(qar, 1e6, 10, 3);
    ASSERT_EQ(queries.size(), 10u);
    for (const Rect& q : queries) {
      EXPECT_NEAR(q.area(), 1e6, 1e-3);
      EXPECT_NEAR(q.x.length() / q.y.length(), qar, qar * 1e-9);
    }
  }
}

TEST(QueryTest, CentroidsCoverTheDomain) {
  const auto queries = GenerateQueries(1, 1e6, 500, 11);
  Coord min_cx = 1e18;
  Coord max_cx = -1e18;
  for (const Rect& q : queries) {
    min_cx = std::min(min_cx, q.x.center());
    max_cx = std::max(max_cx, q.x.center());
  }
  EXPECT_LT(min_cx, 10000);
  EXPECT_GT(max_cx, 90000);
}

}  // namespace
}  // namespace segidx::workload
