#include "storage/coding.h"

#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

namespace segidx::storage {
namespace {

TEST(CodingTest, U16RoundTrip) {
  uint8_t buf[2];
  for (uint32_t v : {0u, 1u, 255u, 256u, 65535u}) {
    EncodeU16(buf, static_cast<uint16_t>(v));
    EXPECT_EQ(DecodeU16(buf), v);
  }
}

TEST(CodingTest, U32RoundTrip) {
  uint8_t buf[4];
  for (uint32_t v : {0u, 1u, 0xffu, 0xff00ff00u, 0xffffffffu}) {
    EncodeU32(buf, v);
    EXPECT_EQ(DecodeU32(buf), v);
  }
}

TEST(CodingTest, U64RoundTrip) {
  uint8_t buf[8];
  for (uint64_t v :
       {0ULL, 1ULL, 0xdeadbeefULL, 0x0123456789abcdefULL, ~0ULL}) {
    EncodeU64(buf, v);
    EXPECT_EQ(DecodeU64(buf), v);
  }
}

TEST(CodingTest, EncodingIsLittleEndian) {
  uint8_t buf[4];
  EncodeU32(buf, 0x01020304u);
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(buf[1], 0x03);
  EXPECT_EQ(buf[2], 0x02);
  EXPECT_EQ(buf[3], 0x01);
}

TEST(CodingTest, DoubleRoundTrip) {
  uint8_t buf[8];
  for (double v : {0.0, -0.0, 1.5, -123456.789, 1e300,
                   std::numeric_limits<double>::infinity(),
                   std::numeric_limits<double>::denorm_min()}) {
    EncodeDouble(buf, v);
    EXPECT_EQ(DecodeDouble(buf), v);
  }
}

TEST(ChecksumTest, DeterministicAndSensitive) {
  std::vector<uint8_t> data(1000);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 31);
  }
  const uint16_t base = Checksum16(data.data(), data.size());
  EXPECT_EQ(Checksum16(data.data(), data.size()), base);
  // Any single-byte change anywhere must flip the checksum.
  for (size_t pos : {0u, 7u, 8u, 499u, 993u, 999u}) {
    std::vector<uint8_t> copy = data;
    copy[pos] ^= 0x01;
    EXPECT_NE(Checksum16(copy.data(), copy.size()), base) << pos;
  }
  // Length matters.
  EXPECT_NE(Checksum16(data.data(), data.size() - 1), base);
}

TEST(ChecksumTest, EmptyAndShortInputs) {
  const uint8_t byte = 0x42;
  EXPECT_EQ(Checksum16(&byte, 0), Checksum16(&byte, 0));
  const uint16_t one = Checksum16(&byte, 1);
  const uint8_t other = 0x43;
  EXPECT_NE(Checksum16(&other, 1), one);
}

TEST(CodingTest, NanRoundTripsBitExact) {
  uint8_t buf[8];
  EncodeDouble(buf, std::numeric_limits<double>::quiet_NaN());
  const double back = DecodeDouble(buf);
  EXPECT_NE(back, back);  // Still NaN.
}

}  // namespace
}  // namespace segidx::storage
