#include "rtree/split.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace segidx::rtree {
namespace {

struct SplitCase {
  SplitAlgorithm algorithm;
  size_t count;
  size_t min_fill;
  uint64_t seed;
};

void PrintTo(const SplitCase& c, std::ostream* os) {
  *os << (c.algorithm == SplitAlgorithm::kQuadratic ? "Quadratic"
          : c.algorithm == SplitAlgorithm::kLinear  ? "Linear"
                                                    : "RStar")
      << "_n" << c.count << "_m" << c.min_fill << "_s" << c.seed;
}

class SplitPropertyTest : public testing::TestWithParam<SplitCase> {};

TEST_P(SplitPropertyTest, PartitionIsCompleteAndBalanced) {
  const SplitCase& c = GetParam();
  Rng rng(c.seed);
  std::vector<Rect> rects;
  rects.reserve(c.count);
  for (size_t i = 0; i < c.count; ++i) {
    const Coord x = rng.Uniform(0, 1000);
    const Coord y = rng.Uniform(0, 1000);
    rects.push_back(
        Rect(x, x + rng.Uniform(0, 50), y, y + rng.Uniform(0, 50)));
  }

  const SplitPartition part = SplitRects(rects, c.min_fill, c.algorithm);

  // Every index appears exactly once.
  std::vector<int> all = part.group_a;
  all.insert(all.end(), part.group_b.begin(), part.group_b.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), c.count);
  for (size_t i = 0; i < c.count; ++i) {
    EXPECT_EQ(all[i], static_cast<int>(i));
  }

  // Both groups meet the (clamped) minimum fill.
  const size_t effective_min =
      std::max<size_t>(1, std::min(c.min_fill, c.count / 2));
  EXPECT_GE(part.group_a.size(), effective_min);
  EXPECT_GE(part.group_b.size(), effective_min);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SplitPropertyTest,
    testing::Values(
        SplitCase{SplitAlgorithm::kQuadratic, 2, 1, 1},
        SplitCase{SplitAlgorithm::kQuadratic, 3, 1, 2},
        SplitCase{SplitAlgorithm::kQuadratic, 26, 10, 3},
        SplitCase{SplitAlgorithm::kQuadratic, 26, 10, 4},
        SplitCase{SplitAlgorithm::kQuadratic, 51, 20, 5},
        SplitCase{SplitAlgorithm::kQuadratic, 100, 40, 6},
        SplitCase{SplitAlgorithm::kLinear, 2, 1, 7},
        SplitCase{SplitAlgorithm::kLinear, 3, 1, 8},
        SplitCase{SplitAlgorithm::kLinear, 26, 10, 9},
        SplitCase{SplitAlgorithm::kLinear, 51, 20, 10},
        SplitCase{SplitAlgorithm::kLinear, 100, 40, 11},
        SplitCase{SplitAlgorithm::kRStar, 2, 1, 12},
        SplitCase{SplitAlgorithm::kRStar, 3, 1, 13},
        SplitCase{SplitAlgorithm::kRStar, 26, 10, 14},
        SplitCase{SplitAlgorithm::kRStar, 51, 20, 15},
        SplitCase{SplitAlgorithm::kRStar, 100, 40, 16}),
    testing::PrintToStringParamName());

TEST(SplitTest, SeparatedClustersSplitCleanly) {
  // Two well-separated clusters must not be mixed.
  std::vector<Rect> rects;
  for (int i = 0; i < 10; ++i) {
    rects.push_back(Rect(i, i + 1, 0, 1));             // Left cluster.
    rects.push_back(Rect(1000 + i, 1001 + i, 0, 1));   // Right cluster.
  }
  for (auto algorithm : {SplitAlgorithm::kQuadratic, SplitAlgorithm::kLinear,
                         SplitAlgorithm::kRStar}) {
    const SplitPartition part = SplitRects(rects, 5, algorithm);
    auto side_of = [](int idx) { return idx % 2; };  // Even = left cluster.
    for (const auto& group : {part.group_a, part.group_b}) {
      const int first_side = side_of(group[0]);
      for (int idx : group) {
        EXPECT_EQ(side_of(idx), first_side)
            << "cluster mixed under "
            << (algorithm == SplitAlgorithm::kQuadratic ? "quadratic"
                                                        : "linear");
      }
    }
  }
}

TEST(SplitTest, IdenticalRectsDoNotCrash) {
  std::vector<Rect> rects(20, Rect(5, 10, 5, 10));
  for (auto algorithm : {SplitAlgorithm::kQuadratic, SplitAlgorithm::kLinear,
                         SplitAlgorithm::kRStar}) {
    const SplitPartition part = SplitRects(rects, 8, algorithm);
    EXPECT_EQ(part.group_a.size() + part.group_b.size(), 20u);
    EXPECT_GE(part.group_a.size(), 8u);
    EXPECT_GE(part.group_b.size(), 8u);
  }
}

TEST(SplitTest, DegenerateSegmentsSplitVertically) {
  // Horizontal segments at distinct Y values (historical data shape): the
  // only useful separation is by Y.
  std::vector<Rect> rects;
  for (int i = 0; i < 26; ++i) {
    rects.push_back(Rect::Segment1D(0, 100, i < 13 ? i : 1000 + i));
  }
  const SplitPartition part =
      SplitRects(rects, 10, SplitAlgorithm::kQuadratic);
  for (const auto& group : {part.group_a, part.group_b}) {
    const bool first_low = rects[static_cast<size_t>(group[0])].y.lo < 500;
    for (int idx : group) {
      EXPECT_EQ(rects[static_cast<size_t>(idx)].y.lo < 500, first_low);
    }
  }
}

}  // namespace
}  // namespace segidx::rtree
