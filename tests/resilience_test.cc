// Runtime-resilience acceptance suite (ISSUE 5).
//
// Covers the whole stack end to end: query deadlines and cooperative
// cancellation at node-fetch granularity, per-page quarantine with partial
// results over a corrupted interior node, the deterministic SearchBatch
// error contract under a fault-injected mid-batch read error, online scrub
// (exact damage reporting, cancellation), and the salvage/rebuild path.
//
// The corruption tests damage the *image* between close and reopen. Note
// the baseline builder ends with two back-to-back flushes: journal replay
// rewrites every page image recorded in the newest checkpoint's journal
// back to the device on open, silently healing any corruption under it, so
// the final checkpoint must be empty for injected damage to stay visible.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <random>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/interval_index.h"
#include "core/salvage.h"
#include "storage/block_device.h"
#include "storage/fault_injection.h"
#include "storage/pager.h"

namespace segidx {
namespace {

using core::IndexKind;
using core::IndexOptions;
using core::IntervalIndex;
using storage::FaultInjectingBlockDevice;
using storage::MemoryBlockDevice;
using storage::PageId;

const Rect kEverything(Interval(-1e12, 1e12), Interval(-1e12, 1e12));

std::vector<std::pair<Rect, TupleId>> MakeRecords(uint64_t n, uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> start(0.0, 1000.0);
  std::uniform_real_distribution<double> length(0.5, 40.0);
  std::uniform_real_distribution<double> ypos(0.0, 1000.0);
  std::vector<std::pair<Rect, TupleId>> records;
  records.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    const double s = start(rng);
    records.emplace_back(
        Rect(Interval(s, s + length(rng)), Interval::Point(ypos(rng))),
        static_cast<TupleId>(i + 1));
  }
  return records;
}

// Builds an SR-Tree, closes it, and returns the device image. The final
// empty checkpoint keeps every node extent out of the journal replay
// window (see file comment).
std::vector<uint8_t> BuildImage(const std::vector<std::pair<Rect, TupleId>>&
                                    records) {
  auto device = std::make_unique<MemoryBlockDevice>();
  MemoryBlockDevice* dev = device.get();
  auto created = IntervalIndex::CreateWithDevice(
      IndexKind::kSRTree, std::move(device), IndexOptions());
  EXPECT_TRUE(created.ok()) << created.status().ToString();
  IntervalIndex* index = created.value().get();
  for (const auto& [rect, tid] : records) {
    EXPECT_TRUE(index->Insert(rect, tid).ok());
  }
  EXPECT_TRUE(index->Flush().ok());
  EXPECT_TRUE(index->Flush().ok());
  EXPECT_TRUE(index->Close().ok());
  return dev->Snapshot();
}

std::unique_ptr<IntervalIndex> OpenImage(const std::vector<uint8_t>& image) {
  auto opened = IntervalIndex::OpenFromDevice(
      std::make_unique<MemoryBlockDevice>(image), IndexOptions());
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  return std::move(opened).value();
}

struct NodeInfo {
  PageId id;
  int parent = -1;
  std::vector<size_t> children;
  std::vector<TupleId> piece_tids;
};

// Flattens the reachable tree (index 0 = root).
std::vector<NodeInfo> MapTree(IntervalIndex* index) {
  std::vector<NodeInfo> nodes;
  std::vector<std::pair<PageId, int>> stack{{index->tree()->root(), -1}};
  uint64_t accesses = 0;
  while (!stack.empty()) {
    const auto [id, parent] = stack.back();
    stack.pop_back();
    const size_t me = nodes.size();
    nodes.push_back({id, parent, {}, {}});
    if (parent >= 0) nodes[parent].children.push_back(me);
    auto node = index->tree()->ReadNode(id, &accesses);
    EXPECT_TRUE(node.ok()) << node.status().ToString();
    if (!node.ok()) continue;
    if (node->is_leaf()) {
      for (const rtree::LeafEntry& e : node->records) {
        nodes[me].piece_tids.push_back(e.tid);
      }
      continue;
    }
    for (const rtree::SpanningEntry& s : node->spanning) {
      nodes[me].piece_tids.push_back(s.tid);
    }
    for (const rtree::BranchEntry& b : node->branches) {
      stack.push_back({b.child, static_cast<int>(me)});
    }
  }
  return nodes;
}

void CorruptExtent(std::vector<uint8_t>* image, PageId id,
                   uint32_t base_block_size = 1024) {
  const uint64_t offset = uint64_t{id.block} * base_block_size;
  const uint64_t extent = uint64_t{base_block_size} << id.size_class;
  ASSERT_LE(offset + extent, image->size());
  for (uint64_t i = 0; i < std::min<uint64_t>(256, extent); ++i) {
    (*image)[offset + i] ^= 0xa5;
  }
}

std::vector<TupleId> SortedTids(const std::vector<rtree::SearchHit>& hits) {
  std::vector<TupleId> tids;
  tids.reserve(hits.size());
  for (const rtree::SearchHit& h : hits) tids.push_back(h.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  return tids;
}

// --- deadlines & cancellation ---------------------------------------------

TEST(ResilienceTest, ExpiredDeadlineTouchesNoNodes) {
  const auto records = MakeRecords(2000, 7);
  auto index = OpenImage(BuildImage(records));

  rtree::SearchOptions options;
  options.deadline = std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1);
  std::vector<rtree::SearchHit> hits;
  rtree::SearchOutcome outcome;
  const Status status = index->Search(kEverything, options, &hits, &outcome);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded)
      << status.ToString();
  EXPECT_EQ(outcome.nodes_accessed, 0u);
  EXPECT_TRUE(hits.empty());

  // A sane future deadline leaves the search untouched.
  options.deadline = std::chrono::steady_clock::now() +
                     std::chrono::minutes(5);
  hits.clear();
  EXPECT_TRUE(index->Search(kEverything, options, &hits, &outcome).ok());
  EXPECT_EQ(SortedTids(hits).size(), records.size());
}

TEST(ResilienceTest, FiredCancelTokenAbortsSearch) {
  auto index = OpenImage(BuildImage(MakeRecords(500, 11)));

  std::atomic<bool> cancel{true};
  rtree::SearchOptions options;
  options.cancel_token = &cancel;
  std::vector<rtree::SearchHit> hits;
  rtree::SearchOutcome outcome;
  const Status status = index->Search(kEverything, options, &hits, &outcome);
  EXPECT_EQ(status.code(), StatusCode::kCancelled) << status.ToString();
  EXPECT_EQ(outcome.nodes_accessed, 0u);

  cancel.store(false);
  hits.clear();
  EXPECT_TRUE(index->Search(kEverything, options, &hits, &outcome).ok());
  EXPECT_GT(outcome.nodes_accessed, 0u);
}

TEST(ResilienceTest, BatchWithExpiredDeadlineFailsEveryEntryCheaply) {
  auto index = OpenImage(BuildImage(MakeRecords(800, 13)));

  rtree::SearchOptions options;
  options.deadline = std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1);
  const std::vector<Rect> queries(6, kEverything);
  std::vector<exec::BatchResult> results;
  const Status status = index->SearchBatch(queries, options, &results, 2);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded)
      << status.ToString();
  ASSERT_EQ(results.size(), queries.size());
  // Deadline expiry is per-query, not batch-fatal: every entry is still
  // claimed and fails its own first deadline check without touching a node.
  for (const exec::BatchResult& r : results) {
    EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded)
        << r.status.ToString();
    EXPECT_EQ(r.nodes_accessed, 0u);
  }
}

// --- per-page quarantine, partial results, scrub, salvage -----------------

TEST(ResilienceTest, CorruptInteriorNodePartialSearchScrubAndSalvage) {
  const auto records = MakeRecords(2000, 42);
  std::vector<uint8_t> image = BuildImage(records);

  // Map the pristine tree and pick an interior (non-root, non-leaf) node.
  std::vector<NodeInfo> nodes;
  {
    auto pristine = OpenImage(image);
    nodes = MapTree(pristine.get());
  }
  int victim = -1;
  for (size_t i = 1; i < nodes.size(); ++i) {
    if (!nodes[i].children.empty()) {
      victim = static_cast<int>(i);
      break;
    }
  }
  ASSERT_GE(victim, 0) << "tree too shallow: no interior non-root node";
  const PageId damaged = nodes[victim].id;

  // Records with every piece inside the damaged subtree are unreachable by
  // a partial search; everything else must still be returned.
  std::unordered_map<TupleId, uint64_t> total_pieces;
  for (const NodeInfo& n : nodes) {
    for (TupleId t : n.piece_tids) ++total_pieces[t];
  }
  std::unordered_map<TupleId, uint64_t> subtree_pieces;
  std::vector<size_t> stack{static_cast<size_t>(victim)};
  while (!stack.empty()) {
    const size_t n = stack.back();
    stack.pop_back();
    for (TupleId t : nodes[n].piece_tids) ++subtree_pieces[t];
    stack.insert(stack.end(), nodes[n].children.begin(),
                 nodes[n].children.end());
  }
  std::vector<TupleId> expect_search;
  for (const auto& [tid, count] : total_pieces) {
    const auto it = subtree_pieces.find(tid);
    if (it == subtree_pieces.end() || it->second < count) {
      expect_search.push_back(tid);
    }
  }
  std::sort(expect_search.begin(), expect_search.end());
  ASSERT_LT(expect_search.size(), records.size())
      << "damaged subtree holds no exclusive records; pick a bigger tree";

  CorruptExtent(&image, damaged);
  auto index = OpenImage(image);  // Damage must not block open.

  // An unqualified search refuses to silently drop results.
  std::vector<rtree::SearchHit> hits;
  const Status strict = index->Search(kEverything, &hits, nullptr);
  EXPECT_EQ(strict.code(), StatusCode::kCorruption) << strict.ToString();
  EXPECT_EQ(index->pager()->quarantined_count(), 0u)
      << "a failing strict search must not quarantine";

  // A partial search skips exactly the damaged subtree and returns exactly
  // the records with a piece outside it.
  rtree::SearchOptions partial;
  partial.allow_partial = true;
  hits.clear();
  rtree::SearchOutcome outcome;
  ASSERT_TRUE(index->Search(kEverything, partial, &hits, &outcome).ok());
  EXPECT_TRUE(outcome.partial);
  ASSERT_EQ(outcome.skipped_subtrees.size(), 1u);
  EXPECT_EQ(outcome.skipped_subtrees[0], damaged);
  EXPECT_EQ(SortedTids(hits), expect_search);

  // The damage is now quarantined; the pager must NOT be device-degraded
  // (that mode is reserved for hard write errors).
  EXPECT_EQ(index->pager()->quarantined_count(), 1u);
  EXPECT_TRUE(index->pager()->IsQuarantined(damaged.block));
  EXPECT_FALSE(index->pager()->degraded());

  // Batch results are bit-identical to serial execution of each query.
  std::vector<Rect> queries;
  queries.push_back(kEverything);
  for (size_t i = 0; i < 6; ++i) {
    const Rect& r = records[i * 97].first;
    queries.push_back(Rect(Interval(r.x.lo - 1.0, r.x.hi + 1.0),
                           Interval(r.y.lo - 1.0, r.y.hi + 1.0)));
  }
  std::vector<std::vector<rtree::SearchHit>> serial(queries.size());
  std::vector<rtree::SearchOutcome> serial_outcomes(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(index
                    ->Search(queries[i], partial, &serial[i],
                             &serial_outcomes[i])
                    .ok());
  }
  std::vector<exec::BatchResult> batch;
  ASSERT_TRUE(index->SearchBatch(queries, partial, &batch, 2).ok());
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_TRUE(batch[i].status.ok()) << batch[i].status.ToString();
    EXPECT_EQ(batch[i].partial, serial_outcomes[i].partial);
    ASSERT_EQ(batch[i].hits.size(), serial[i].size()) << "query " << i;
    for (size_t j = 0; j < serial[i].size(); ++j) {
      EXPECT_EQ(batch[i].hits[j].tid, serial[i][j].tid);
      EXPECT_EQ(batch[i].hits[j].rect, serial[i][j].rect);
    }
  }

  // Scrub reports exactly the damaged extent and nothing else.
  auto scrub = index->Scrub();
  ASSERT_TRUE(scrub.ok()) << scrub.status().ToString();
  EXPECT_TRUE(scrub->completed);
  ASSERT_EQ(scrub->defects.size(), 1u) << scrub->ToString();
  EXPECT_EQ(scrub->defects[0].page, damaged);

  // Salvage rebuilds a structurally sound index holding every record with
  // a piece outside the damaged extent itself (children of the damaged
  // interior node are intact on disk, so salvage beats the partial search).
  std::unordered_set<TupleId> damaged_extent_tids(
      nodes[victim].piece_tids.begin(), nodes[victim].piece_tids.end());
  std::vector<TupleId> expect_salvage;
  for (const auto& [tid, count] : total_pieces) {
    const uint64_t on_extent = damaged_extent_tids.count(tid)
                                   ? std::count(nodes[victim].piece_tids.begin(),
                                                nodes[victim].piece_tids.end(),
                                                tid)
                                   : 0;
    if (on_extent < count) expect_salvage.push_back(tid);
  }
  std::sort(expect_salvage.begin(), expect_salvage.end());

  const MemoryBlockDevice damaged_dev(image);
  core::SalvageOptions salvage_options;
  core::SalvageReport report;
  auto rebuilt = core::SalvageToDevice(damaged_dev,
                                       std::make_unique<MemoryBlockDevice>(),
                                       salvage_options, &report);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_TRUE((*rebuilt)->CheckInvariants().ok());
  std::vector<TupleId> recovered;
  ASSERT_TRUE((*rebuilt)->SearchTuples(kEverything, &recovered).ok());
  std::sort(recovered.begin(), recovered.end());
  // Every expected record is back. Stale pre-checkpoint copies may
  // resurrect a few extras, so this is a superset check on the floor.
  EXPECT_TRUE(std::includes(recovered.begin(), recovered.end(),
                            expect_salvage.begin(), expect_salvage.end()))
      << "salvage lost records: expected >= " << expect_salvage.size()
      << ", got " << recovered.size();
  EXPECT_GT(expect_salvage.size(), expect_search.size());
}

// --- deterministic batch error contract -----------------------------------

TEST(ResilienceTest, BatchMidBatchReadErrorContract) {
  const auto records = MakeRecords(600, 17);
  const std::vector<uint8_t> image = BuildImage(records);

  auto device = std::make_unique<FaultInjectingBlockDevice>(
      std::make_unique<MemoryBlockDevice>(image));
  FaultInjectingBlockDevice* dev = device.get();
  auto opened =
      IntervalIndex::OpenFromDevice(std::move(device), IndexOptions());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  IntervalIndex* index = opened.value().get();

  // Warm the cache for two narrow queries, then make every further
  // physical read fail. With one worker the batch executes in query
  // order: q0/q1 run entirely from cache, q2 (full space) needs uncached
  // leaves and hits the injected EIO, q3/q4 are never claimed.
  const Rect narrow0(Interval(records[0].first.x.lo, records[0].first.x.hi),
                     records[0].first.y);
  const Rect narrow1(Interval(records[1].first.x.lo, records[1].first.x.hi),
                     records[1].first.y);
  std::vector<rtree::SearchHit> warm;
  ASSERT_TRUE(index->Search(narrow0, &warm, nullptr).ok());
  ASSERT_TRUE(index->Search(narrow1, &warm, nullptr).ok());
  dev->FailNthRead(0, /*sticky=*/true);

  const std::vector<Rect> queries{narrow0, narrow1, kEverything, narrow0,
                                  narrow1};
  std::vector<exec::BatchResult> results;
  const Status status =
      index->SearchBatch(queries, rtree::SearchOptions(), &results, 1);
  EXPECT_EQ(status.code(), StatusCode::kIoError) << status.ToString();
  ASSERT_EQ(results.size(), queries.size());
  EXPECT_TRUE(results[0].status.ok()) << results[0].status.ToString();
  EXPECT_TRUE(results[1].status.ok()) << results[1].status.ToString();
  EXPECT_EQ(results[2].status.code(), StatusCode::kIoError);
  EXPECT_EQ(results[3].status.code(), StatusCode::kCancelled);
  EXPECT_EQ(results[4].status.code(), StatusCode::kCancelled);

  // Transient device errors must not quarantine pages or degrade the
  // pager: retrying after the fault clears succeeds.
  EXPECT_EQ(index->pager()->quarantined_count(), 0u);
  EXPECT_FALSE(index->pager()->degraded());
  dev->ClearFaults();
  std::vector<exec::BatchResult> retry;
  ASSERT_TRUE(
      index->SearchBatch(queries, rtree::SearchOptions(), &retry, 1).ok());
  for (const exec::BatchResult& r : retry) EXPECT_TRUE(r.status.ok());
}

TEST(ResilienceTest, FlakyReadsSkipSubtreesWithoutQuarantine) {
  const std::vector<uint8_t> image = BuildImage(MakeRecords(800, 23));
  auto device = std::make_unique<FaultInjectingBlockDevice>(
      std::make_unique<MemoryBlockDevice>(image));
  FaultInjectingBlockDevice* dev = device.get();
  auto opened =
      IntervalIndex::OpenFromDevice(std::move(device), IndexOptions());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  IntervalIndex* index = opened.value().get();

  dev->FailEveryKthRead(3);
  rtree::SearchOptions partial;
  partial.allow_partial = true;
  std::vector<rtree::SearchHit> hits;
  rtree::SearchOutcome outcome;
  ASSERT_TRUE(index->Search(kEverything, partial, &hits, &outcome).ok());
  // Whatever subtrees the flaky device dropped, transient EIO never
  // quarantines a page and never degrades the device.
  EXPECT_EQ(index->pager()->quarantined_count(), 0u);
  EXPECT_FALSE(index->pager()->degraded());

  dev->ClearFaults();
  hits.clear();
  ASSERT_TRUE(index->Search(kEverything, partial, &hits, &outcome).ok());
  EXPECT_FALSE(outcome.partial);
}

// --- scrub controls -------------------------------------------------------

TEST(ResilienceTest, ScrubHonorsCancelToken) {
  auto index = OpenImage(BuildImage(MakeRecords(500, 31)));

  std::atomic<bool> cancel{true};
  storage::ScrubOptions options;
  options.cancel_token = &cancel;
  auto report = index->Scrub(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->completed);

  cancel.store(false);
  report = index->Scrub(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->completed);
  EXPECT_TRUE(report->clean()) << report->ToString();
  EXPECT_GT(report->reachable_extents, 0u);
}

TEST(ResilienceTest, ScrubRateLimitStillCompletes) {
  auto index = OpenImage(BuildImage(MakeRecords(300, 37)));
  storage::ScrubOptions options;
  options.max_extents_per_second = 1'000'000;  // Fast but exercises pacing.
  auto report = index->Scrub(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->completed);
  EXPECT_TRUE(report->clean()) << report->ToString();
}

// --- disk full (ENOSPC) ---------------------------------------------------

// Device level: a full disk rejects writes, syncs, and truncates with
// kResourceExhausted — distinct from EIO — while reads keep working and
// clearing the fault restores writes.
TEST(ResilienceTest, DiskFullDeviceReturnsResourceExhausted) {
  FaultInjectingBlockDevice dev(std::make_unique<MemoryBlockDevice>());
  const uint8_t data[16] = {1, 2, 3};
  ASSERT_TRUE(dev.Write(0, data, sizeof(data)).ok());

  dev.SetDiskFull(true);
  EXPECT_EQ(dev.Write(16, data, sizeof(data)).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(dev.Sync().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(dev.Truncate(4096).code(), StatusCode::kResourceExhausted);
  uint8_t out[16] = {};
  EXPECT_TRUE(dev.Read(0, sizeof(out), out).ok());  // Data intact.
  EXPECT_EQ(out[0], 1);

  dev.SetDiskFull(false);
  EXPECT_TRUE(dev.Write(16, data, sizeof(data)).ok());
}

// Index level: a checkpoint that hits ENOSPC fails kResourceExhausted and
// flips the pager into read-only degraded mode — searches keep serving
// the last durable state plus the in-memory tail, further mutations are
// refused kUnavailable, and nothing already on the device is damaged.
TEST(ResilienceTest, DiskFullDegradesToReadOnlyButKeepsServing) {
  auto device = std::make_unique<FaultInjectingBlockDevice>(
      std::make_unique<MemoryBlockDevice>());
  FaultInjectingBlockDevice* dev = device.get();
  auto created = IntervalIndex::CreateWithDevice(
      IndexKind::kRTree, std::move(device), IndexOptions());
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto index = std::move(created).value();

  const auto records = MakeRecords(300, 11);
  for (const auto& [rect, tid] : records) {
    ASSERT_TRUE(index->Insert(rect, tid).ok());
  }
  ASSERT_TRUE(index->Commit().ok());

  // The disk fills; the next checkpoint cannot land.
  dev->SetDiskFull(true);
  ASSERT_TRUE(
      index->Insert(Rect(Interval(1, 2), Interval::Point(3)), 9001).ok());
  const Status full = index->Commit();
  ASSERT_FALSE(full.ok());
  EXPECT_EQ(full.code(), StatusCode::kResourceExhausted) << full.ToString();
  EXPECT_EQ(index->storage_stats().degraded, 1u);

  // Degraded, not dead: reads serve everything applied so far...
  std::vector<TupleId> tids;
  ASSERT_TRUE(index->SearchTuples(kEverything, &tids).ok());
  EXPECT_EQ(tids.size(), records.size() + 1);

  // ...while durability operations are refused as unavailable (degraded
  // mode is sticky even after space frees up: the pager cannot know what
  // the failed checkpoint left behind).
  dev->SetDiskFull(false);
  EXPECT_EQ(index->Commit().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace segidx
