// Shared helpers for the index test suites.

#ifndef SEGIDX_TESTS_TEST_UTIL_H_
#define SEGIDX_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <memory>
#include <vector>

#include "common/types.h"
#include "rtree/rtree.h"
#include "storage/block_device.h"
#include "storage/pager.h"

namespace segidx::test_util {

inline std::unique_ptr<storage::Pager> MakeMemoryPager(
    size_t buffer_pool_bytes = 64u << 20) {
  storage::PagerOptions options;
  options.buffer_pool_bytes = buffer_pool_bytes;
  auto result =
      storage::Pager::Create(std::make_unique<storage::MemoryBlockDevice>(),
                             options);
  SEGIDX_CHECK(result.ok());
  return std::move(result).value();
}

// Distinct tuple ids from search hits, sorted (matches NaiveOracle output).
inline std::vector<TupleId> Tids(const std::vector<rtree::SearchHit>& hits) {
  std::vector<TupleId> out;
  out.reserve(hits.size());
  for (const rtree::SearchHit& hit : hits) out.push_back(hit.tid);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace segidx::test_util

#endif  // SEGIDX_TESTS_TEST_UTIL_H_
