#include "bench_support/experiment.h"

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace segidx::bench_support {
namespace {

ExperimentConfig TinyConfig(workload::DatasetKind kind) {
  BenchArgs args;
  args.tuples = 3000;
  args.queries = 20;
  args.check_invariants = true;
  ExperimentConfig config = MakePaperConfig(kind, args);
  config.qars = {0.001, 1.0, 1000.0};
  return config;
}

TEST(ExperimentTest, RunsAllFourIndexes) {
  BenchArgs args;
  args.tuples = 30000;  // Grid cells narrower than the mean I3 length.
  args.queries = 20;
  args.check_invariants = true;
  ExperimentConfig config = MakePaperConfig(workload::DatasetKind::kI3, args);
  config.qars = {0.001, 1.0, 1000.0};
  auto results = RunExperiment(config, nullptr);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), 4u);
  for (const SeriesResult& series : *results) {
    ASSERT_EQ(series.avg_nodes.size(), config.qars.size());
    for (double avg : series.avg_nodes) {
      EXPECT_GT(avg, 0);
    }
    EXPECT_GT(series.build.index_bytes, 0u);
    EXPECT_GE(series.build.height, 2);
  }
  // The Skeleton SR-Tree placed spanning records on I3 (its grid cells are
  // narrower than the mean interval length at this scale).
  EXPECT_GT((*results)[3].build.spanning_placed, 0u);
  // Non-segment variants never place any.
  EXPECT_EQ((*results)[0].build.spanning_placed, 0u);
  EXPECT_EQ((*results)[2].build.spanning_placed, 0u);
}

TEST(ExperimentTest, TablePrintersProduceOutput) {
  const ExperimentConfig config = TinyConfig(workload::DatasetKind::kR2);
  auto results = RunExperiment(config, nullptr);
  ASSERT_TRUE(results.ok());
  std::ostringstream series_os;
  PrintSeriesTable(config, *results, series_os);
  EXPECT_NE(series_os.str().find("R2"), std::string::npos);
  EXPECT_NE(series_os.str().find("Skeleton SR-Tree"), std::string::npos);
  std::ostringstream build_os;
  PrintBuildTable(config, *results, build_os);
  EXPECT_NE(build_os.str().find("BUILD STATISTICS"), std::string::npos);
}

TEST(ExperimentTest, CsvRoundTrip) {
  const ExperimentConfig config = TinyConfig(workload::DatasetKind::kI1);
  auto results = RunExperiment(config, nullptr);
  ASSERT_TRUE(results.ok());
  const std::string path = testing::TempDir() + "/series.csv";
  ASSERT_TRUE(WriteSeriesCsv(path, config, *results).ok());
  std::ifstream in(path);
  std::string header;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, header)));
  EXPECT_EQ(header,
            "qar,log10_qar,R_Tree,SR_Tree,Skeleton_R_Tree,"
            "Skeleton_SR_Tree");
  int rows = 0;
  std::string line;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 3);
}

TEST(ExperimentTest, SkeletonBeatsNonSkeletonOnVerticalQueries) {
  // The paper's headline effect at miniature scale: for horizontal segment
  // data and vertical queries, skeleton indexes access far fewer nodes.
  BenchArgs args;
  args.tuples = 20000;
  args.queries = 40;
  ExperimentConfig config = MakePaperConfig(workload::DatasetKind::kI1, args);
  config.qars = {0.0001};
  auto results = RunExperiment(config, nullptr);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  const double rtree = (*results)[0].avg_nodes[0];
  const double skeleton_rtree = (*results)[2].avg_nodes[0];
  EXPECT_LT(skeleton_rtree, rtree);
}

TEST(BenchArgsTest, ParsesFlags) {
  const char* argv[] = {"bench", "--tuples=5000", "--queries=7", "--seed=9",
                        "--check"};
  auto args = ParseBenchArgs(5, const_cast<char**>(argv));
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args->tuples, 5000u);
  EXPECT_EQ(args->queries, 7);
  EXPECT_EQ(args->seed, 9u);
  EXPECT_TRUE(args->check_invariants);
}

TEST(BenchArgsTest, RejectsUnknownAndInvalid) {
  const char* bad[] = {"bench", "--wat"};
  EXPECT_FALSE(ParseBenchArgs(2, const_cast<char**>(bad)).ok());
  const char* zero[] = {"bench", "--tuples=0"};
  EXPECT_FALSE(ParseBenchArgs(2, const_cast<char**>(zero)).ok());
}

TEST(MakePaperConfigTest, FollowsPaperParameters) {
  BenchArgs args;
  args.tuples = 200000;
  const ExperimentConfig config =
      MakePaperConfig(workload::DatasetKind::kR2, args);
  EXPECT_EQ(config.options.skeleton.prediction_sample, 10000u);
  EXPECT_EQ(config.options.skeleton.coalesce_interval, 1000u);
  EXPECT_EQ(config.options.skeleton.coalesce_candidates, 10);
  EXPECT_EQ(config.options.pager.base_block_size, 1024u);
  EXPECT_EQ(config.qars.size(), 13u);
  EXPECT_EQ(config.queries_per_qar, 100);
}

}  // namespace
}  // namespace segidx::bench_support
